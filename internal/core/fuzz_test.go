package core

import (
	"bytes"
	"testing"
)

func FuzzParseFragment(f *testing.F) {
	m := &Message{DeviceID: 0x1001, Seq: 7, Readings: []Reading{Temperature(17), Battery(3000)}}
	frags, _ := m.Encode(nil)
	for _, fr := range frags {
		f.Add(fr)
	}
	key, _ := NewKey([]byte("0123456789abcdef"))
	sealed, _ := m.Encode(key)
	for _, fr := range sealed {
		f.Add(fr)
	}
	f.Add([]byte{})
	f.Add([]byte{Version, 0, 0, 0, 0, 1, 0, 1, 0x11})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseFragment(data)
		if err != nil {
			return
		}
		// A parseable single-fragment message must reassemble without
		// panicking (errors are fine — bodies are arbitrary).
		if h.Total == 1 {
			Reassemble([]*FragmentHeader{h}, nil)
		}
	})
}

func FuzzReadingsRoundTrip(f *testing.F) {
	body, _ := (&Message{Readings: []Reading{Temperature(21.5), Humidity(40), Counter(9)}}).body()
	f.Add(body)
	f.Add([]byte{1, 2, 0x08, 0x6d})
	f.Add([]byte{255, 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		readings, err := parseReadings(data)
		if err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse to the same values.
		var out []byte
		for _, r := range readings {
			var err error
			out, err = appendReading(out, r)
			if err != nil {
				t.Fatalf("parsed reading does not encode: %v", err)
			}
		}
		back, err := parseReadings(out)
		if err != nil {
			t.Fatalf("re-encoded readings do not parse: %v", err)
		}
		if len(back) != len(readings) {
			t.Fatalf("reading count changed: %d → %d", len(readings), len(back))
		}
		for i := range back {
			if back[i].Type != readings[i].Type || back[i].Value != readings[i].Value ||
				!bytes.Equal(back[i].Raw, readings[i].Raw) {
				t.Fatalf("reading %d changed: %+v → %+v", i, readings[i], back[i])
			}
		}
	})
}
