package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testKey(t *testing.T) *Key {
	t.Helper()
	k, err := NewKey([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// encodeDecode round-trips a message through fragments.
func encodeDecode(t *testing.T, m *Message, key *Key) *Message {
	t.Helper()
	frags, err := m.Encode(key)
	if err != nil {
		t.Fatal(err)
	}
	headers := make([]*FragmentHeader, 0, len(frags))
	for _, f := range frags {
		h, err := ParseFragment(f)
		if err != nil {
			t.Fatal(err)
		}
		headers = append(headers, h)
	}
	got, err := Reassemble(headers, key)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMessageRoundTripPlain(t *testing.T) {
	m := &Message{
		DeviceID: 0xdeadbeef,
		Seq:      42,
		Readings: []Reading{Temperature(21.57), Humidity(48.5), Battery(2987), Counter(17)},
	}
	got := encodeDecode(t, m, nil)
	if got.DeviceID != m.DeviceID || got.Seq != 42 || got.Downlink {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Readings) != 4 {
		t.Fatalf("readings: %+v", got.Readings)
	}
	if got.Readings[0].Celsius() != 21.57 {
		t.Errorf("temperature = %v", got.Readings[0].Celsius())
	}
	if got.Readings[1].Percent() != 48.5 {
		t.Errorf("humidity = %v", got.Readings[1].Percent())
	}
	if got.Readings[2].Value != 2987 {
		t.Errorf("battery = %v", got.Readings[2].Value)
	}
	if got.Readings[3].Value != 17 {
		t.Errorf("counter = %v", got.Readings[3].Value)
	}
}

func TestMessageSingleFragmentFitsOneElement(t *testing.T) {
	m := &Message{DeviceID: 1, Seq: 1, Readings: []Reading{Temperature(17)}}
	frags, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("small message took %d fragments", len(frags))
	}
	// A temperature beacon's vendor payload: 9-byte header + 4-byte TLV.
	if len(frags[0]) != headerLen+4 {
		t.Fatalf("fragment is %d bytes", len(frags[0]))
	}
}

func TestMessageFragmentation(t *testing.T) {
	// A payload bigger than one vendor element must fragment and
	// reassemble exactly.
	raw := make([]byte, 3*FragmentCapacity/2)
	for i := range raw {
		raw[i] = byte(i * 7)
	}
	m := &Message{DeviceID: 9, Seq: 3, Readings: []Reading{RawReading(raw[:200]), RawReading(raw[200:])}}
	frags, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("large payload took %d fragments", len(frags))
	}
	got := encodeDecode(t, m, nil)
	if len(got.Readings) != 2 {
		t.Fatalf("readings: %d", len(got.Readings))
	}
	joined := append(append([]byte(nil), got.Readings[0].Raw...), got.Readings[1].Raw...)
	if !bytes.Equal(joined, raw) {
		t.Fatal("fragmented payload corrupted")
	}
}

func TestMessageOversizedRejected(t *testing.T) {
	var readings []Reading
	for i := 0; i < 16; i++ {
		readings = append(readings, RawReading(make([]byte, 255)))
	}
	m := &Message{DeviceID: 1, Readings: readings}
	if _, err := m.Encode(nil); err == nil {
		t.Fatal("oversized message encoded")
	}
}

func TestRxWindowRoundTrip(t *testing.T) {
	m := &Message{DeviceID: 5, Seq: 9, RxWindow: 30 * time.Millisecond,
		Readings: []Reading{Temperature(18)}}
	got := encodeDecode(t, m, nil)
	if got.RxWindow != 30*time.Millisecond {
		t.Fatalf("rx window = %v", got.RxWindow)
	}
	// Sub-unit windows round up to one unit.
	m2 := &Message{DeviceID: 5, Seq: 10, RxWindow: 3 * time.Millisecond}
	if got := encodeDecode(t, m2, nil); got.RxWindow != rxWindowUnit {
		t.Fatalf("tiny window = %v, want %v", got.RxWindow, rxWindowUnit)
	}
	// Oversized windows rejected.
	m3 := &Message{DeviceID: 5, RxWindow: 10 * time.Second}
	if _, err := m3.Encode(nil); err == nil {
		t.Fatal("10 s window encoded")
	}
}

func TestDownlinkFlagRoundTrip(t *testing.T) {
	m := &Message{DeviceID: 7, Seq: 1, Downlink: true, Readings: []Reading{Counter(1)}}
	if got := encodeDecode(t, m, nil); !got.Downlink {
		t.Fatal("downlink flag lost")
	}
}

func TestNegativeTemperature(t *testing.T) {
	m := &Message{DeviceID: 1, Readings: []Reading{Temperature(-40.25)}}
	got := encodeDecode(t, m, nil)
	if got.Readings[0].Celsius() != -40.25 {
		t.Fatalf("negative temperature = %v", got.Readings[0].Celsius())
	}
}

func TestUnknownReadingTypePreserved(t *testing.T) {
	// Forward compatibility: an unknown TLV type decodes as raw bytes.
	body := []byte{99, 3, 0xaa, 0xbb, 0xcc}
	readings, err := parseReadings(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) != 1 || readings[0].Type != 99 || !bytes.Equal(readings[0].Raw, []byte{0xaa, 0xbb, 0xcc}) {
		t.Fatalf("readings = %+v", readings)
	}
}

func TestParseFragmentErrors(t *testing.T) {
	m := &Message{DeviceID: 1, Seq: 1, Readings: []Reading{Counter(1)}}
	frags, _ := m.Encode(nil)
	good := frags[0]
	if _, err := ParseFragment(good[:5]); err == nil {
		t.Error("short fragment parsed")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 9 // wrong version
	if _, err := ParseFragment(bad); err == nil {
		t.Error("wrong version parsed")
	}
	bad2 := append([]byte(nil), good...)
	bad2[8] = 0x10 // index 1 of total 0
	if _, err := ParseFragment(bad2); err == nil {
		t.Error("invalid frag counts parsed")
	}
}

func TestReassembleErrors(t *testing.T) {
	raw := make([]byte, 600)
	m := &Message{DeviceID: 1, Seq: 1, Readings: []Reading{RawReading(raw[:250]), RawReading(raw[250:500]), RawReading(raw[500:])}}
	frags, err := m.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var headers []*FragmentHeader
	for _, f := range frags {
		h, _ := ParseFragment(f)
		headers = append(headers, h)
	}
	if len(headers) < 2 {
		t.Fatalf("need multi-fragment message, got %d", len(headers))
	}
	if _, err := Reassemble(headers[:1], nil); err == nil {
		t.Error("incomplete set reassembled")
	}
	if _, err := Reassemble(nil, nil); err == nil {
		t.Error("empty set reassembled")
	}
	// Mixed device IDs rejected.
	mixed := append([]*FragmentHeader{}, headers...)
	clone := *headers[1]
	clone.DeviceID++
	mixed[1] = &clone
	if _, err := Reassemble(mixed, nil); err == nil {
		t.Error("mixed-device set reassembled")
	}
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	f := func(id uint32, seq uint16, temp int16, batt uint16, rawLen uint16) bool {
		raw := make([]byte, rawLen%256)
		for i := range raw {
			raw[i] = byte(i)
		}
		m := &Message{
			DeviceID: id,
			Seq:      seq,
			Readings: []Reading{
				{Type: ReadingTemperature, Value: int64(temp)},
				{Type: ReadingBatteryMV, Value: int64(batt)},
				RawReading(raw),
			},
		}
		got := encodeDecode(t, m, nil)
		return got.DeviceID == id && got.Seq == seq &&
			got.Readings[0].Value == int64(temp) &&
			got.Readings[1].Value == int64(batt) &&
			bytes.Equal(got.Readings[2].Raw, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- security ---

func TestSealedRoundTrip(t *testing.T) {
	k := testKey(t)
	m := &Message{DeviceID: 77, Seq: 5, Readings: []Reading{Temperature(36.6)}}
	got := encodeDecode(t, m, k)
	if got.Readings[0].Celsius() != 36.6 {
		t.Fatalf("sealed round trip: %+v", got.Readings)
	}
}

func TestSealedCiphertextHidesPlaintext(t *testing.T) {
	k := testKey(t)
	m := &Message{DeviceID: 77, Seq: 5, Readings: []Reading{RawReading([]byte("SECRET-READING"))}}
	plain, _ := m.Encode(nil)
	sealed, _ := m.Encode(k)
	if bytes.Contains(sealed[0], []byte("SECRET-READING")) {
		t.Fatal("plaintext visible in sealed fragment")
	}
	if len(sealed[0]) != len(plain[0])+TagLen {
		t.Fatalf("sealed overhead = %d bytes, want %d", len(sealed[0])-len(plain[0]), TagLen)
	}
}

func TestSealedWrongKeyRejected(t *testing.T) {
	k := testKey(t)
	k2, _ := NewKey([]byte("fedcba9876543210"))
	m := &Message{DeviceID: 1, Seq: 1, Readings: []Reading{Counter(9)}}
	frags, _ := m.Encode(k)
	h, _ := ParseFragment(frags[0])
	if _, err := Reassemble([]*FragmentHeader{h}, k2); err == nil {
		t.Fatal("wrong key accepted")
	}
	if _, err := Reassemble([]*FragmentHeader{h}, nil); err != ErrNoKey {
		t.Fatalf("nil key: %v, want ErrNoKey", err)
	}
}

func TestSealedTamperRejected(t *testing.T) {
	k := testKey(t)
	m := &Message{DeviceID: 1, Seq: 1, Readings: []Reading{Counter(9)}}
	frags, _ := m.Encode(k)
	for i := headerLen; i < len(frags[0]); i++ {
		bad := append([]byte(nil), frags[0]...)
		bad[i] ^= 0x01
		h, err := ParseFragment(bad)
		if err != nil {
			continue
		}
		if _, err := Reassemble([]*FragmentHeader{h}, k); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
}

func TestSealedBindsIdentity(t *testing.T) {
	// A beacon captured from device A must not replay as device B, a
	// different sequence number, or a downlink.
	k := testKey(t)
	ct := k.Seal(1, 1, 0, []byte("reading"))
	if _, err := k.Open(2, 1, 0, ct); err == nil {
		t.Error("replayed under different device ID")
	}
	if _, err := k.Open(1, 2, 0, ct); err == nil {
		t.Error("replayed under different seq")
	}
	if _, err := k.Open(1, 1, flagDownlink, ct); err == nil {
		t.Error("replayed as downlink")
	}
	if got, err := k.Open(1, 1, 0, ct); err != nil || string(got) != "reading" {
		t.Errorf("legitimate open: %q, %v", got, err)
	}
}

func TestNewKeyValidation(t *testing.T) {
	if _, err := NewKey([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
	k1, _ := NewKey(bytes.Repeat([]byte{1}, KeyLen))
	k2, _ := NewKey(bytes.Repeat([]byte{2}, KeyLen))
	ct := k1.Seal(1, 1, 0, []byte("x"))
	if _, err := k2.Open(1, 1, 0, ct); err == nil {
		t.Fatal("cross-key open succeeded")
	}
}

func TestPropertySealOpenRoundTrip(t *testing.T) {
	k := testKey(t)
	f := func(id uint32, seq uint16, flags byte, body []byte) bool {
		ct := k.Seal(id, seq, flags, body)
		got, err := k.Open(id, seq, flags, ct)
		return err == nil && bytes.Equal(got, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentCapacityArithmetic(t *testing.T) {
	// The paper's beacon-stuffing citation allows ~253 bytes per vendor
	// element; our header spends 9, leaving 243 per fragment and over
	// 3.6 kB per beacon — versus BLE's 31-byte AdvData.
	if FragmentCapacity != 243 {
		t.Fatalf("FragmentCapacity = %d", FragmentCapacity)
	}
	if MaxPayload != 15*243 {
		t.Fatalf("MaxPayload = %d", MaxPayload)
	}
	if FragmentCapacity < 31*7 {
		t.Fatal("one Wi-LE fragment should dwarf a BLE advertisement")
	}
}

func TestReadingValueRanges(t *testing.T) {
	// int16 centidegree bounds: ±327.67 °C.
	for _, c := range []float64{-327.68, 327.67, 0} {
		m := &Message{DeviceID: 1, Readings: []Reading{Temperature(c)}}
		got := encodeDecode(t, m, nil)
		if math.Abs(got.Readings[0].Celsius()-c) > 0.01 {
			t.Errorf("temperature %v decoded as %v", c, got.Readings[0].Celsius())
		}
	}
}
