package core

import (
	"time"

	"wile/internal/sim"
)

// ChannelHopper cycles a receiver across channels, the way a phone's scan
// loop does. Each channel is one Scanner on that channel's medium; the
// hopper keeps exactly one radio on at a time and rotates on a fixed dwell.
//
// Dwell choice matters: a Wi-LE device transmits one beacon per period, so
// the hopper catches a device only if it dwells on the right channel when
// the beacon flies. With C channels, the expected capture rate is 1/C —
// the §1 trade the paper gets for free on 2.4 GHz (three-channel scans)
// and pays for in the less crowded 5 GHz band (many channels). The
// HopperStudy ablation quantifies it.
type ChannelHopper struct {
	// Scanners are the per-channel receivers, rotated in order.
	Scanners []*Scanner
	// Dwell is the per-channel listen time.
	Dwell time.Duration
	// Stats accumulates hopper-level counters.
	Stats HopperStats

	sched   *sim.Scheduler
	current int
	running bool
}

// HopperStats counts hops.
type HopperStats struct {
	Hops int
}

// NewChannelHopper builds a hopper over the given per-channel scanners.
func NewChannelHopper(sched *sim.Scheduler, dwell time.Duration, scanners ...*Scanner) *ChannelHopper {
	if len(scanners) == 0 {
		panic("core: hopper needs at least one scanner")
	}
	if dwell <= 0 {
		dwell = 250 * time.Millisecond
	}
	return &ChannelHopper{Scanners: scanners, Dwell: dwell, sched: sched}
}

// Start begins hopping from the first channel.
func (h *ChannelHopper) Start() {
	if h.running {
		return
	}
	h.running = true
	for _, sc := range h.Scanners {
		sc.Stop()
	}
	h.current = 0
	h.Scanners[0].Start()
	h.scheduleHop()
}

// Stop halts hopping and powers the active receiver down.
func (h *ChannelHopper) Stop() {
	h.running = false
	h.Scanners[h.current].Stop()
}

func (h *ChannelHopper) scheduleHop() {
	h.sched.DoAfter(h.Dwell, func() {
		if !h.running {
			return
		}
		h.Scanners[h.current].Stop()
		h.current = (h.current + 1) % len(h.Scanners)
		h.Scanners[h.current].Start()
		h.Stats.Hops++
		h.scheduleHop()
	})
}

// Devices merges every channel's registry (device IDs are globally unique,
// but a device near a channel boundary may appear on several channels; the
// freshest record wins).
func (h *ChannelHopper) Devices() []DeviceRecord {
	merged := map[uint32]DeviceRecord{}
	for _, sc := range h.Scanners {
		for _, rec := range sc.Devices() {
			if prev, ok := merged[rec.DeviceID]; !ok || rec.LastSeen > prev.LastSeen {
				merged[rec.DeviceID] = rec
			}
		}
	}
	out := make([]DeviceRecord, 0, len(merged))
	for _, rec := range merged {
		out = append(out, rec)
	}
	sortRecords(out)
	return out
}

// Messages sums the distinct messages across channels.
func (h *ChannelHopper) Messages() int {
	n := 0
	for _, sc := range h.Scanners {
		n += sc.Stats.Messages
	}
	return n
}

func sortRecords(recs []DeviceRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].DeviceID < recs[j-1].DeviceID; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}
