package core

import (
	"fmt"
	"time"

	"wile/internal/dot11"
	"wile/internal/esp32"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// SensorConfig parameterizes a Wi-LE transmitter.
type SensorConfig struct {
	// DeviceID is the unique identifier embedded in every message and in
	// the beacon's (locally administered) BSSID.
	DeviceID uint32
	// Position places the device on the medium.
	Position medium.Position
	// Period is the reporting interval (the paper's example: "periodically
	// wakes up (e.g., every 10 minutes) to send its temperature reading").
	Period time.Duration
	// Rate is the injection PHY rate. The paper's §5.4 measurement uses
	// 72 Mb/s (MCS7 short GI) at 0 dBm; that is the default.
	Rate phy.Rate
	// TxPower is the transmit power (default 0 dBm, matching §5.4).
	TxPower phy.DBm
	// Channel is advertised in the DS parameter element.
	Channel int
	// Key, when non-nil, encrypts and authenticates every message (§6).
	Key *Key
	// JitterPPM models the wake-timer crystal tolerance. The paper §6
	// argues co-periodic transmitters "automatically differ away from each
	// other due to the jitter of their clocks"; 40 ppm is a typical IoT
	// crystal and the default. Negative means a perfect (jitter-free)
	// clock, for studies that need the pathological case.
	JitterPPM float64
	// RxWindow, when nonzero, announces a post-beacon receive window in
	// every message (§6 two-way extension) and keeps the radio on for it.
	RxWindow time.Duration
	// SkipBoot omits the deep-sleep boot profile on each wake. Power
	// studies leave it false; protocol-only tests may set it.
	SkipBoot bool
	// Seed seeds the per-device randomness (jitter, backoff).
	Seed uint64
}

func (c SensorConfig) withDefaults() SensorConfig {
	if c.Rate.KbPerSec == 0 {
		c.Rate = phy.RateHTMCS7SGI
	}
	if c.Channel == 0 {
		c.Channel = 6
	}
	if c.JitterPPM == 0 {
		c.JitterPPM = 40
	}
	if c.Seed == 0 {
		c.Seed = uint64(c.DeviceID)*0x9e3779b9 + 1
	}
	return c
}

// Sensor is one Wi-LE IoT device.
type Sensor struct {
	Cfg SensorConfig
	// Dev is the device power model.
	Dev *esp32.Device
	// Port is the MAC entity used for injection.
	Port *mac.Port
	// Sample supplies the readings for each transmission. Defaults to a
	// single monotonic counter.
	Sample func() []Reading
	// OnDownlink receives §6 two-way responses that arrive inside an
	// announced receive window.
	OnDownlink func(*Message)
	// Stats accumulates transmitter-side counters.
	Stats SensorStats
	// Metrics, when non-nil, mirrors the Stats counters into a shared
	// metrics registry (see SensorMetricsFor / Observe).
	Metrics *SensorMetrics

	sched   *sim.Scheduler
	rng     *sim.Rand
	seq     uint16
	running bool
	// pendingSeq tracks the in-flight sequence number for downlink match.
	windowOpen bool

	// rec/track carry the optional trace recorder (TraceTo).
	rec   *obs.Recorder
	track obs.TrackID
}

// SensorStats counts transmitter events.
type SensorStats struct {
	Messages  int
	Fragments int
	Downlinks int
}

// NewSensor builds a sleeping sensor attached to the medium.
func NewSensor(sched *sim.Scheduler, med *medium.Medium, cfg SensorConfig) *Sensor {
	cfg = cfg.withDefaults()
	s := &Sensor{
		Cfg:   cfg,
		Dev:   esp32.New(sched),
		sched: sched,
		rng:   sim.NewRand(cfg.Seed),
	}
	s.Sample = func() []Reading {
		return []Reading{Counter(uint32(s.Stats.Messages))}
	}
	s.Port = mac.New(sched, med, fmt.Sprintf("wile:%08x", cfg.DeviceID), cfg.Position,
		s.BSSID(), cfg.Rate, cfg.TxPower, phy.SensitivityWiFiMCS7, sim.NewRand(cfg.Seed^0xbeef))
	s.Port.Radio = s.Dev
	s.Port.AutoACK = false // a Wi-LE device never ACKs anything
	s.Port.Handler = s.handleFrame
	return s
}

// BSSID reports the device's beacon BSSID, derived from the device ID.
func (s *Sensor) BSSID() dot11.MAC { return dot11.LocalMAC(s.Cfg.DeviceID) }

// TraceTo attaches the sensor and its device/MAC to a trace recorder,
// registering one track per layer: power states, MAC activity, and the
// sensor's own injection instants. Passing a nil recorder detaches.
func (s *Sensor) TraceTo(r *obs.Recorder) {
	s.rec = r
	if r == nil {
		s.Dev.TraceTo(nil, 0)
		s.Port.TraceTo(nil, 0)
		return
	}
	name := fmt.Sprintf("wile:%08x", s.Cfg.DeviceID)
	s.Dev.TraceTo(r, r.Track(name+" power"))
	s.Port.TraceTo(r, r.Track(name+" mac"))
	s.track = r.Track(name)
}

// Observe mirrors the sensor's MAC and protocol counters into the registry.
func (s *Sensor) Observe(reg *obs.Registry) {
	s.Port.Metrics = mac.MetricsFor(reg)
	s.Metrics = SensorMetricsFor(reg)
}

// BuildBeacon constructs the injected frame for the given message: hidden
// SSID (§4.1), DS parameter, basic rates, and the message fragments as
// vendor-specific elements.
func BuildBeacon(bssid dot11.MAC, channel int, m *Message, key *Key) (*dot11.Beacon, error) {
	frags, err := m.Encode(key)
	if err != nil {
		return nil, err
	}
	els := dot11.Elements{
		dot11.SSIDElement(""), // hidden: keeps phone AP lists clean
		dot11.DefaultRates(),
		dot11.DSParamElement(channel),
	}
	for _, f := range frags {
		ve, err := dot11.VendorElement(OUI, f)
		if err != nil {
			return nil, err
		}
		els = append(els, ve)
	}
	// Beacon interval field: we are not a real AP, but scanners may use
	// the field to predict the next transmission; encode the period in TU
	// saturating at the field width.
	return dot11.NewBeacon(bssid, 100, 0 /* neither ESS nor IBSS */, els), nil
}

// TransmitOnce performs one full wake cycle: boot (unless SkipBoot),
// inject the beacon carrying readings, optionally hold the receive window
// open, then deep-sleep. done (optional) reports MAC-level completion.
func (s *Sensor) TransmitOnce(readings []Reading, done func(ok bool)) {
	finish := func(ok bool) {
		if done != nil {
			done(ok)
		}
	}
	inject := func() {
		msg := &Message{
			DeviceID: s.Cfg.DeviceID,
			Seq:      s.seq,
			Readings: readings,
			RxWindow: s.Cfg.RxWindow,
		}
		s.seq++
		beacon, err := BuildBeacon(s.BSSID(), s.Cfg.Channel, msg, s.Cfg.Key)
		if err != nil {
			// Only possible with oversized payloads: surface loudly.
			panic(fmt.Sprintf("core: building beacon: %v", err))
		}
		s.Stats.Messages++
		s.Stats.Fragments += len(beacon.Elements.Vendors(OUI))
		if s.Metrics != nil {
			s.Metrics.Messages.Inc()
			s.Metrics.Fragments.Add(int64(len(beacon.Elements.Vendors(OUI))))
		}
		if s.rec != nil {
			s.rec.Instant(s.track, s.sched.Now(), "inject-beacon")
		}
		s.Port.SetRadioOn(true)
		s.Dev.SetState(esp32.StateRadioListen)
		err = s.Port.Send(beacon, func(ok bool) {
			if s.Cfg.RxWindow > 0 {
				// §6: hold the radio on for the announced window so a
				// base station can inject a response.
				s.windowOpen = true
				s.sched.DoAfter(s.Cfg.RxWindow, func() {
					s.windowOpen = false
					s.sleep()
					finish(ok)
				})
				return
			}
			s.sleep()
			finish(ok)
		})
		if err != nil {
			panic(fmt.Sprintf("core: sending beacon: %v", err))
		}
	}
	s.Dev.SetState(esp32.StateCPUActive)
	if s.Cfg.SkipBoot {
		inject()
		return
	}
	s.Dev.PlaySegments(esp32.BootWiLE(), inject)
}

// sleep powers everything down.
func (s *Sensor) sleep() {
	s.Port.SetRadioOn(false)
	s.Dev.MarkPhase("Sleep")
	s.Dev.SetState(esp32.StateDeepSleep)
}

// handleFrame watches for downlink responses during open windows.
func (s *Sensor) handleFrame(f dot11.Frame, rx medium.Reception) {
	if !s.windowOpen || s.OnDownlink == nil {
		return
	}
	beacon, ok := f.(*dot11.Beacon)
	if !ok {
		return
	}
	msg, err := DecodeBeacon(beacon, func(uint32) *Key { return s.Cfg.Key })
	if err != nil || !msg.Downlink || msg.DeviceID != s.Cfg.DeviceID {
		return
	}
	s.Stats.Downlinks++
	if s.Metrics != nil {
		s.Metrics.Downlinks.Inc()
	}
	s.OnDownlink(msg)
}

// Run starts the periodic reporting loop. Each cycle wakes the device,
// samples, transmits, and schedules the next wake with crystal jitter.
func (s *Sensor) Run() {
	if s.running {
		return
	}
	s.running = true
	s.scheduleNext()
}

// Stop halts the loop after the current cycle.
func (s *Sensor) Stop() { s.running = false }

func (s *Sensor) scheduleNext() {
	if !s.running {
		return
	}
	interval := time.Duration(float64(s.Cfg.Period) * s.rng.Jitter(s.Cfg.JitterPPM))
	s.sched.DoAfter(interval, func() {
		if !s.running {
			return
		}
		s.TransmitOnce(s.Sample(), func(bool) { s.scheduleNext() })
	})
}

// Seq reports the next sequence number (for tests).
func (s *Sensor) Seq() uint16 { return s.seq }
