//go:build race

package wile_test

// raceEnabled gates steady-state allocation assertions: the race-enabled
// runtime intentionally drops a random fraction of sync.Pool Puts to
// surface data races, so pool-backed paths are not allocation-free under
// the race detector.
const raceEnabled = true
