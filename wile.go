// Package wile is the public API of the Wi-LE reproduction: connection-less
// WiFi communication for low-power IoT devices by injecting 802.11 beacon
// frames, after "Wi-LE: Can WiFi Replace Bluetooth?" (Abedi, Abari, Brecht —
// HotNets '19).
//
// # The idea
//
// WiFi's physical layer is ~3× more energy-efficient per bit than
// Bluetooth's, but the 802.11 MAC makes devices pay to establish and
// maintain a connection: probe/authenticate/associate, a WPA2 4-way
// handshake, DHCP and ARP — at least 20 MAC-layer and 7 higher-layer frames
// before the first data byte, plus either a re-association on every wake
// (238.2 mJ per message) or a 4.5 mA idle draw to stay associated.
//
// Wi-LE skips all of it. A device wakes from deep sleep, injects a single
// 802.11 beacon frame whose hidden SSID keeps it out of AP pickers and
// whose vendor-specific elements carry the payload, and goes back to sleep:
// 84 µJ per message at the transmit window, 2.5 µA idle — BLE numbers
// (71 µJ / 1.1 µA) on WiFi hardware that any phone or laptop can receive
// without new radios, drivers, or root.
//
// # Quick start
//
//	sched := wile.NewScheduler()
//	med := wile.NewMedium(sched, wile.Channel(6))
//
//	sensor := wile.NewSensor(sched, med, wile.SensorConfig{
//		DeviceID: 0x1001,
//		Period:   10 * time.Minute,
//	})
//	sensor.Sample = func() []wile.Reading {
//		return []wile.Reading{wile.Temperature(readThermometer())}
//	}
//	sensor.Run()
//
//	scanner := wile.NewScanner(sched, med, wile.ScannerConfig{})
//	scanner.OnMessage = func(m *wile.Message, meta wile.Meta) {
//		fmt.Printf("device %08x: %.2f °C (RSSI %v)\n",
//			m.DeviceID, m.Readings[0].Celsius(), meta.RSSI)
//	}
//	scanner.Start()
//
//	sched.RunFor(time.Hour)
//
// The library also contains everything the paper's evaluation depends on —
// a full 802.11 frame codec, a DCF MAC, WPA2-PSK key machinery, DHCP/ARP,
// an access point, a WiFi client, device power models for the ESP32 and
// CC2541, and a 50 kSa/s measurement instrument — so every table and
// figure in the paper regenerates from this module (see cmd/wile-lab and
// EXPERIMENTS.md).
package wile

import (
	"time"

	"wile/internal/core"
	"wile/internal/dot11"
	"wile/internal/mac"
	"wile/internal/medium"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
)

// Simulation kernel.
type (
	// Scheduler is the deterministic discrete-event clock every component
	// runs on.
	Scheduler = sim.Scheduler
	// Time is a virtual timestamp in nanoseconds from simulation start.
	Time = sim.Time
	// Medium is one shared radio channel.
	Medium = medium.Medium
	// Position locates a radio on the medium, in meters.
	Position = medium.Position
)

// NewScheduler returns a fresh virtual clock.
func NewScheduler() *Scheduler { return sim.New() }

// Channel returns 2.4 GHz WiFi channel n (1–13).
func Channel(n int) phy.Channel { return phy.WiFi24Channel(n) }

// Channel5GHz returns 5 GHz WiFi channel n — the spectrum the paper notes
// Wi-LE can use and BLE cannot.
func Channel5GHz(n int) phy.Channel { return phy.WiFi5Channel(n) }

// NewMedium builds a radio medium on the given channel.
func NewMedium(sched *Scheduler, ch phy.Channel) *Medium { return medium.New(sched, ch) }

// The Wi-LE protocol surface.
type (
	// Sensor is a Wi-LE transmitter: deep sleep → inject beacon → sleep.
	Sensor = core.Sensor
	// SensorConfig parameterizes a Sensor.
	SensorConfig = core.SensorConfig
	// Scanner is a Wi-LE receiver (a "phone app").
	Scanner = core.Scanner
	// ScannerConfig parameterizes a Scanner.
	ScannerConfig = core.ScannerConfig
	// Responder is the base-station half of the §6 two-way extension.
	Responder = core.Responder
	// Message is one Wi-LE transmission.
	Message = core.Message
	// Reading is one typed sensor value.
	Reading = core.Reading
	// Meta describes how a message arrived (RSSI, time, BSSID).
	Meta = core.Meta
	// DeviceRecord is a scanner's per-device aggregate.
	DeviceRecord = core.DeviceRecord
	// Key is a per-device pre-shared key for the §6 security extension.
	Key = core.Key
	// ChannelHopper cycles a receiver across channels like a phone's scan
	// loop.
	ChannelHopper = core.ChannelHopper
	// ReliableSensor adds at-least-once batch delivery on top of the
	// two-way extension (ack in the receive window, retransmit on the
	// next wake).
	ReliableSensor = core.ReliableSensor
	// FragmentHeader is a decoded wire fragment (for tools that work on
	// raw captures).
	FragmentHeader = core.FragmentHeader
	// MACStats counts one port's MAC events (sensor.Port.Stats).
	MACStats = mac.Stats
	// MACFleetStats aggregates per-port MAC stats across a fleet (or
	// across engine workers) under a mutex.
	MACFleetStats = mac.FleetStats
)

// Observability. Components expose an Observe(*Registry) method that
// mirrors their counters into a shared registry; WriteJSON snapshots it.
type (
	// Registry is a shared metrics registry (counters, gauges, histograms).
	Registry = obs.Registry
	// MetricsCounter is one monotonically increasing registry counter.
	MetricsCounter = obs.Counter
	// Provenance is the frame ledger: wire it into a Medium with
	// ObserveProvenance and every transmitted frame resolves to exactly one
	// outcome per potential receiver — delivered, or a reason from the
	// closed drop taxonomy. WriteReport/WriteReportJSON summarize it per
	// reason and per link.
	Provenance = obs.Provenance
	// DropReason is one terminal outcome from the frame-drop taxonomy.
	DropReason = obs.DropReason
	// TimeSeries samples a Registry on a sim-time cadence, turning final
	// counter values into timelines (WriteCSV / WriteChromeTrace).
	TimeSeries = obs.TimeSeries
)

// The closed drop-reason taxonomy (see DESIGN.md §10).
const (
	Delivered            = obs.Delivered
	DropCollided         = obs.DropCollided
	DropBelowSensitivity = obs.DropBelowSensitivity
	DropRadioOff         = obs.DropRadioOff
	DropFCSError         = obs.DropFCSError
	DropDedupFiltered    = obs.DropDedupFiltered
	DropQueueDrop        = obs.DropQueueDrop
	DropDecodeError      = obs.DropDecodeError
)

// NewRegistry builds an empty metrics registry. Pass it to each component's
// Observe method; delivery and duplicate rates then come from one snapshot
// instead of per-component ad-hoc counters.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewProvenance builds an empty frame ledger. Attach it with
// med.ObserveProvenance(p) before traffic starts; p.Verify() then checks
// the conservation invariant and p.WriteReport breaks every loss down by
// reason and link.
func NewProvenance() *Provenance { return obs.NewProvenance() }

// NewTimeSeries builds an in-memory sampler over reg on the given sim-time
// cadence (≤0 selects the 10 ms default). Call Run(sched) before the
// simulation starts and WriteCSV after it ends.
func NewTimeSeries(reg *Registry, cadence time.Duration) *TimeSeries {
	return obs.NewTimeSeries(reg, obs.NewMemorySink(), cadence)
}

// NewSensor builds a sleeping sensor attached to the medium.
func NewSensor(sched *Scheduler, med *Medium, cfg SensorConfig) *Sensor {
	return core.NewSensor(sched, med, cfg)
}

// NewScanner builds a receiver attached to the medium. Call Start to begin
// listening.
func NewScanner(sched *Scheduler, med *Medium, cfg ScannerConfig) *Scanner {
	return core.NewScanner(sched, med, cfg)
}

// NewResponder builds a two-way base station on the medium.
func NewResponder(sched *Scheduler, med *Medium, name string, pos Position, channel int) *Responder {
	return core.NewResponder(sched, med, name, pos, channel)
}

// NewKey derives a device key from a 16-byte pre-shared secret.
func NewKey(secret []byte) (*Key, error) { return core.NewKey(secret) }

// NewChannelHopper builds a hopping receiver over per-channel scanners.
func NewChannelHopper(sched *Scheduler, dwell time.Duration, scanners ...*Scanner) *ChannelHopper {
	return core.NewChannelHopper(sched, dwell, scanners...)
}

// NewReliableSensor wraps a sensor with at-least-once delivery. Pair it
// with a Responder whose AutoAck is set.
func NewReliableSensor(s *Sensor, maxAttempts int) *ReliableSensor {
	return core.NewReliableSensor(s, maxAttempts)
}

// ReadingType identifies a sensor reading TLV.
type ReadingType = core.ReadingType

// Reading types.
const (
	ReadingTemperature = core.ReadingTemperature
	ReadingHumidity    = core.ReadingHumidity
	ReadingBatteryMV   = core.ReadingBatteryMV
	ReadingCounter     = core.ReadingCounter
	ReadingRaw         = core.ReadingRaw
)

// Reading constructors.
var (
	// Temperature builds a temperature reading from degrees Celsius.
	Temperature = core.Temperature
	// Humidity builds a relative-humidity reading from percent.
	Humidity = core.Humidity
	// Battery builds a battery-voltage reading from millivolts.
	Battery = core.Battery
	// Counter builds a monotonic counter reading.
	Counter = core.Counter
	// RawReading wraps opaque bytes.
	RawReading = core.RawReading
)

// BuildBeacon constructs the injected 802.11 beacon for a message — the
// byte-exact frame a real injection firmware would transmit. Useful for
// writing captures (see internal/pcap and cmd/wile-sensor).
func BuildBeacon(deviceID uint32, channel int, m *Message, key *Key) (*dot11.Beacon, error) {
	return core.BuildBeacon(dot11.LocalMAC(deviceID), channel, m, key)
}

// DecodeBeacon extracts a Wi-LE message from a decoded beacon frame.
func DecodeBeacon(b *dot11.Beacon, keyFor func(deviceID uint32) *Key) (*Message, error) {
	return core.DecodeBeacon(b, keyFor)
}

// OUI is the vendor-specific element identifier Wi-LE messages use.
var OUI = core.OUI

// MaxPayload is the largest message body one beacon can carry (fragments
// across vendor elements).
const MaxPayload = core.MaxPayload

// DefaultPeriod is the paper's motivating reporting interval ("periodically
// wakes up (e.g., every 10 minutes) to send its temperature reading").
const DefaultPeriod = 10 * time.Minute
