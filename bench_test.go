package wile_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each Benchmark*
// reports the reproduced quantity as a custom metric alongside the usual
// ns/op, so `bench_output.txt` doubles as the measured-results record
// EXPERIMENTS.md references:
//
//	BenchmarkTable1EnergyPerPacketWiLE     µJ/pkt    (paper: 84)
//	BenchmarkTable1EnergyPerPacketBLE      µJ/pkt    (paper: 71)
//	BenchmarkTable1EnergyPerPacketWiFiDC   mJ/pkt    (paper: 238.2)
//	BenchmarkTable1EnergyPerPacketWiFiPS   mJ/pkt    (paper: 19.8)
//	BenchmarkFig3aWiFiJoinTrace            mJ/cycle, tx-s
//	BenchmarkFig3bWiLETrace                mJ/cycle
//	BenchmarkFig4AveragePowerSweep         crossover-s
//	BenchmarkClaimsJoinFrameCount          mac-frames, hl-frames

import (
	"fmt"
	"io"
	"testing"
	"time"

	"wile"
	"wile/internal/dot11"
	"wile/internal/engine"
	"wile/internal/experiment"
	"wile/internal/medium"
	"wile/internal/obs"
	"wile/internal/phy"
	"wile/internal/sim"
	"wile/internal/units"
)

// --- Table 1 ---

func BenchmarkTable1EnergyPerPacketWiLE(b *testing.B) {
	b.ReportAllocs()
	var energy units.Joules
	for i := 0; i < b.N; i++ {
		ep, _, err := experiment.MeasureWiLE()
		if err != nil {
			b.Fatal(err)
		}
		energy = ep.Energy
	}
	b.ReportMetric(energy.Micro(), "µJ/pkt")
}

func BenchmarkTable1EnergyPerPacketBLE(b *testing.B) {
	b.ReportAllocs()
	var energy units.Joules
	for i := 0; i < b.N; i++ {
		ep, err := experiment.MeasureBLE()
		if err != nil {
			b.Fatal(err)
		}
		energy = ep.Energy
	}
	b.ReportMetric(energy.Micro(), "µJ/pkt")
}

func BenchmarkTable1EnergyPerPacketWiFiDC(b *testing.B) {
	b.ReportAllocs()
	var energy units.Joules
	for i := 0; i < b.N; i++ {
		ep, err := experiment.MeasureWiFiDC()
		if err != nil {
			b.Fatal(err)
		}
		energy = ep.Energy
	}
	b.ReportMetric(energy.Milli(), "mJ/pkt")
}

func BenchmarkTable1EnergyPerPacketWiFiPS(b *testing.B) {
	b.ReportAllocs()
	var energy units.Joules
	for i := 0; i < b.N; i++ {
		ep, err := experiment.MeasureWiFiPS()
		if err != nil {
			b.Fatal(err)
		}
		energy = ep.Energy
	}
	b.ReportMetric(energy.Milli(), "mJ/pkt")
}

// --- Figure 3 ---

func BenchmarkFig3aWiFiJoinTrace(b *testing.B) {
	b.ReportAllocs()
	var tr *experiment.Trace
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Release()
		}
		var err error
		tr, err = experiment.RunFig3a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tr.Energy.Milli(), "mJ/cycle")
	if txAt, _, ok := tr.PhaseBounds("Tx"); ok {
		b.ReportMetric(txAt.Seconds(), "tx-at-s")
	}
	b.ReportMetric(float64(len(tr.Samples)), "samples")
}

func BenchmarkFig3bWiLETrace(b *testing.B) {
	b.ReportAllocs()
	var tr *experiment.Trace
	for i := 0; i < b.N; i++ {
		if tr != nil {
			tr.Release()
		}
		var err error
		tr, err = experiment.RunFig3b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tr.Energy.Milli(), "mJ/cycle")
}

// --- Figure 4 ---

func BenchmarkFig4AveragePowerSweep(b *testing.B) {
	table, err := experiment.RunTable1()
	if err != nil {
		b.Fatal(err)
	}
	// The grid is pure setup: build it once so the timed region measures
	// the Equation-1 sweep, not 300 time.Duration appends per iteration.
	intervals := experiment.DefaultFig4Intervals()
	var fig *experiment.Fig4Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = experiment.RunFig4(table, intervals)
	}
	b.ReportMetric(fig.CrossoverDCPS.Seconds(), "crossover-s")
	b.ReportMetric(float64(len(fig.Series[0].Points)), "points/series")
}

// --- §3.1 claims ---

func BenchmarkClaimsJoinFrameCount(b *testing.B) {
	b.ReportAllocs()
	var c *experiment.ClaimsResult
	for i := 0; i < b.N; i++ {
		var err error
		c, err = experiment.RunClaims()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.MACLayerFrames), "mac-frames")
	b.ReportMetric(float64(c.HigherLayerFrames), "hl-frames")
	b.ReportMetric(float64(c.FourWayFrames), "4way-frames")
}

// --- Ablations ---

func BenchmarkAblationBitrateSweep(b *testing.B) {
	var pts []experiment.BitratePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiment.RunBitrateAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Energy.Micro(), "µJ@1Mbps")
	b.ReportMetric(pts[len(pts)-1].Energy.Micro(), "µJ@72Mbps")
}

func BenchmarkAblationPayloadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunPayloadAblation(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationJitterStudy(b *testing.B) {
	var pts []experiment.JitterPoint
	for i := 0; i < b.N; i++ {
		pts = experiment.RunJitterStudy([]float64{40}, 50)
	}
	b.ReportMetric(pts[0].DeliveryRate*100, "delivery-%")
}

// --- Micro-benchmarks on the hot protocol paths ---

func BenchmarkBeaconBuildAndMarshal(b *testing.B) {
	benchBeaconBuildAndMarshal(b)
}

func benchBeaconBuildAndMarshal(b *testing.B) {
	msg := &wile.Message{DeviceID: 1, Seq: 1, Readings: []wile.Reading{wile.Temperature(17)}}
	var scratch []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg.Seq = uint16(i)
		beacon, err := wile.BuildBeacon(1, 6, msg, nil)
		if err != nil {
			b.Fatal(err)
		}
		scratch, err = dot11.AppendMarshal(scratch[:0], beacon)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeaconDecodeToMessage(b *testing.B) {
	msg := &wile.Message{DeviceID: 1, Seq: 1, Readings: []wile.Reading{wile.Temperature(17)}}
	beacon, err := wile.BuildBeacon(1, 6, msg, nil)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := dot11.Marshal(beacon)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := dot11.Decode(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wile.DecodeBeacon(f.(*dot11.Beacon), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealedBeaconRoundTrip(b *testing.B) {
	key, err := wile.NewKey([]byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	keyFor := func(uint32) *wile.Key { return key }
	msg := &wile.Message{DeviceID: 1, Seq: 1, Readings: []wile.Reading{wile.Temperature(17)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		msg.Seq = uint16(i)
		beacon, err := wile.BuildBeacon(1, 6, msg, key)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wile.DecodeBeacon(beacon, keyFor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndTransmission(b *testing.B) {
	benchEndToEndTransmission(b)
}

func benchEndToEndTransmission(b *testing.B) {
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))
	sensor := wile.NewSensor(sched, med, wile.SensorConfig{DeviceID: 1, SkipBoot: true})
	scanner := wile.NewScanner(sched, med, wile.ScannerConfig{Position: wile.Position{X: 2}})
	scanner.Start()
	readings := []wile.Reading{wile.Temperature(17)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sensor.TransmitOnce(readings, nil)
		sched.RunFor(10 * time.Millisecond)
	}
	if scanner.Stats.Messages != b.N {
		b.Fatalf("delivered %d of %d", scanner.Stats.Messages, b.N)
	}
}

// --- Extended ablation benches ---

func BenchmarkAblationInterferenceStudy(b *testing.B) {
	var pts []experiment.InterferencePoint
	for i := 0; i < b.N; i++ {
		pts = experiment.RunInterferenceStudy([]float64{0.8})
	}
	b.ReportMetric(pts[0].DeliveryRate*100, "delivery-%@80duty")
	b.ReportMetric(float64(pts[0].MeanDelay.Microseconds()), "deferral-µs")
}

func BenchmarkAblationFastRejoin(b *testing.B) {
	var ep experiment.Episode
	for i := 0; i < b.N; i++ {
		var err error
		ep, err = experiment.MeasureWiFiDCFast()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ep.Energy.Milli(), "mJ/pkt")
}

func BenchmarkAblationHopperStudy(b *testing.B) {
	var pts []experiment.HopperPoint
	for i := 0; i < b.N; i++ {
		pts = experiment.RunHopperStudy([]int{3})
	}
	b.ReportMetric(pts[0].CaptureRate*100, "capture-%@3ch")
}

func BenchmarkAblationGoodput(b *testing.B) {
	var res *experiment.GoodputResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunGoodputStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WiLEJoulesPerByte*1e6, "wile-µJ/B")
	b.ReportMetric(res.BLEJoulesPerByte*1e6, "ble-µJ/B")
}

// --- Engine speedup pairs ---
//
// Each pair runs the same sweep on the serial reference pool and on a
// parallel pool, so results/bench_output.txt (and BENCH_baseline.json's
// derived speedups) record how much of the machine the engine converts
// into wall-clock. On a single-core runner the pair reads ≈1×; the
// determinism tests guarantee the outputs are byte-identical either way.

func benchFig4Sweep(b *testing.B, p *engine.Pool) {
	prev := experiment.SetPool(p)
	defer experiment.SetPool(prev)
	table, err := experiment.RunTable1()
	if err != nil {
		b.Fatal(err)
	}
	intervals := experiment.DefaultFig4Intervals()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.RunFig4(table, intervals)
	}
}

func BenchmarkEngineFig4Sweep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchFig4Sweep(b, engine.Serial()) })
	b.Run("parallel", func(b *testing.B) { benchFig4Sweep(b, engine.New(0)) })
}

func benchJitterSweep(b *testing.B, p *engine.Pool) {
	prev := experiment.SetPool(p)
	defer experiment.SetPool(prev)
	ppms := []float64{0, 10, 40, 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.RunJitterStudy(ppms, 50)
	}
}

func BenchmarkEngineJitterSweep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchJitterSweep(b, engine.Serial()) })
	b.Run("parallel", func(b *testing.B) { benchJitterSweep(b, engine.New(0)) })
}

func benchTable1(b *testing.B, p *engine.Pool) {
	prev := experiment.SetPool(p)
	defer experiment.SetPool(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTable1(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchTable1(b, engine.Serial()) })
	b.Run("parallel", func(b *testing.B) { benchTable1(b, engine.New(0)) })
}

// --- Observability overhead ---
//
// Every hot path grew nil-guarded observability hooks (see internal/obs and
// DESIGN.md §8). BenchmarkObsDisabled re-runs key workloads with the hooks
// in their default nil state; each sub-benchmark is the exact body of the
// eponymous top-level benchmark, so BENCH_baseline.json's pre-obs entry is
// the reference the pair is diffed against (scripts/benchjson -baseline).
// The disabled path must add zero allocations — TestObsDisabledZeroAlloc
// pins that — and only a predictable branch per event.

func BenchmarkObsDisabled(b *testing.B) {
	b.Run("BeaconBuildAndMarshal", benchBeaconBuildAndMarshal)
	b.Run("EndToEndTransmission", benchEndToEndTransmission)
	b.Run("Fig3bWiLETrace", func(b *testing.B) {
		b.ReportAllocs()
		var tr *experiment.Trace
		for i := 0; i < b.N; i++ {
			if tr != nil {
				tr.Release()
			}
			var err error
			tr, err = experiment.RunFig3b()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsEnabled is the other side of the ledger: the same Wi-LE trace
// with a recorder and registry attached, reporting how many trace events
// one wake cycle emits.
func BenchmarkObsEnabled(b *testing.B) {
	b.Run("Fig3bWiLETrace", func(b *testing.B) {
		b.ReportAllocs()
		var events int
		var tr *experiment.Trace
		for i := 0; i < b.N; i++ {
			if tr != nil {
				tr.Release()
			}
			rec := obs.NewRecorder()
			o := &experiment.Obs{Rec: rec, Reg: obs.NewRegistry()}
			var err error
			tr, err = experiment.RunFig3bObs(o)
			if err != nil {
				b.Fatal(err)
			}
			events = rec.Len()
		}
		b.ReportMetric(float64(events), "events/cycle")
	})
}

// BenchmarkObsExport pairs the two Recorder sinks over the same synthetic
// event stream: the in-memory buffer against the bounded-memory spill file.
// The pair is the cost sheet for picking a sink — streaming trades a flat
// allocation profile (O(chunk), not O(events)) for the spill file's I/O.
func BenchmarkObsExport(b *testing.B) {
	const events = 100_000
	fill := func(r *obs.Recorder) {
		dev := r.Track("dev power")
		cur := r.Track("current_mA")
		for i := 0; r.Len() < events; i++ {
			at := sim.Time(i) * sim.Microsecond
			switch i % 3 {
			case 0:
				r.Span(dev, at, at+2*sim.Microsecond, "tx beacon")
			case 1:
				r.Counter(cur, at, float64(i%97)*0.31)
			default:
				r.Instant(dev, at, "dispatch")
			}
		}
	}
	b.Run("buffered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := obs.NewRecorder()
			fill(r)
			if err := r.WriteChromeTrace(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spill, err := obs.NewSpillSink(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			r := obs.NewStreamRecorder(spill)
			fill(r)
			if err := r.WriteChromeTrace(io.Discard); err != nil {
				b.Fatal(err)
			}
			if err := spill.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Frame provenance ---
//
// BenchmarkLifecycle pairs the lossy multi-device scenario with provenance
// off (the default nil-hook state — the baseline every PR gates allocs/op
// against) and on (full ledger: per-frame ids, per-receiver outcome
// resolution, per-link counts). BenchmarkDropReport isolates the report
// serialization over a populated ledger.

func BenchmarkLifecycleDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunDropScenario(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLifecycleProvenance(b *testing.B) {
	b.ReportAllocs()
	var frames int64
	for i := 0; i < b.N; i++ {
		prov := obs.NewProvenance()
		if _, err := experiment.RunDropScenario(&experiment.Obs{Prov: prov}); err != nil {
			b.Fatal(err)
		}
		frames = prov.Frames()
	}
	b.ReportMetric(float64(frames), "frames")
}

func BenchmarkDropReport(b *testing.B) {
	prov := obs.NewProvenance()
	if _, err := experiment.RunDropScenario(&experiment.Obs{Prov: prov}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prov.WriteReport(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := prov.WriteReportJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMediumDense drives the culled, gridded medium at beacon
// densities the all-pairs walk could not touch: n beaconing devices in a
// 300 m square sharing one channel for half a simulated second. ns/op here
// is the cost of the city-scale channel model itself — receiver culling,
// grid queries, incremental busy-tracking and the amortized prune all sit
// on this path.
func BenchmarkMediumDense(b *testing.B) {
	for _, n := range []int{500, 2000} {
		b.Run(fmt.Sprintf("devices=%d", n), func(b *testing.B) {
			cfg := experiment.DefaultDensityConfig()
			cfg.Devices = []int{n}
			cfg.Side = 300
			cfg.Window = 500 * time.Millisecond
			prev := experiment.SetPool(engine.Serial())
			defer experiment.SetPool(prev)
			b.ReportAllocs()
			b.ResetTimer()
			var pts []experiment.DensityPoint
			for i := 0; i < b.N; i++ {
				var err error
				pts, err = experiment.RunDensitySweep(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].CollisionRate*100, "collision-%")
			b.ReportMetric(float64(pts[0].Transmissions)/b.Elapsed().Seconds()*float64(b.N), "tx/s")
		})
	}
}

// TestObsDisabledZeroAlloc is the acceptance gate for the disabled path:
// building and marshaling a beacon with no hooks attached must stay within
// the pre-obs allocation budget (9 allocs/op at the PR-2 baseline).
func TestObsDisabledZeroAlloc(t *testing.T) {
	msg := &wile.Message{DeviceID: 1, Seq: 1, Readings: []wile.Reading{wile.Temperature(17)}}
	var scratch []byte
	allocs := testing.AllocsPerRun(200, func() {
		beacon, err := wile.BuildBeacon(1, 6, msg, nil)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = dot11.AppendMarshal(scratch[:0], beacon)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 9 {
		t.Fatalf("beacon build+marshal costs %.1f allocs/op with obs disabled; budget is 9", allocs)
	}
}

// TestProvenanceDisabledZeroAlloc pins the disabled frame-provenance path:
// with no ledger attached, one transmit/deliver cycle on the raw medium
// must stay within the pre-provenance allocation budget (the delivery
// closures and scheduler events; 4 allocs/op at the PR-8 baseline). The
// ledger hooks are nil checks only — any allocation growth here means the
// disabled path regressed.
func TestProvenanceDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Puts under the race detector; steady-state alloc counts are nondeterministic")
	}
	sched := wile.NewScheduler()
	med := wile.NewMedium(sched, wile.Channel(6))
	tx := med.Attach("tx", wile.Position{}, 0, phy.SensitivityWiFiMCS7)
	rx := med.Attach("rx", wile.Position{X: 2}, 0, phy.SensitivityWiFiMCS7)
	tx.SetOn(true)
	rx.SetOn(true)
	rx.Handler = func(medium.Reception) {}
	data := make([]byte, 64)
	// Warm the history and event-queue capacity out of the measurement.
	for i := 0; i < 8; i++ {
		med.Transmit(tx, data, phy.RateHTMCS7SGI)
		sched.RunFor(time.Millisecond)
	}
	allocs := testing.AllocsPerRun(200, func() {
		med.Transmit(tx, data, phy.RateHTMCS7SGI)
		sched.RunFor(time.Millisecond)
	})
	if allocs > 4 {
		t.Fatalf("transmit+deliver costs %.1f allocs/op with provenance disabled; budget is 4", allocs)
	}
}
