package main

import (
	"encoding/json"
	"strings"
	"testing"

	"wile/internal/analysis"
)

// TestKnownBadFixture runs the full multichecker against the known-bad
// fixture package and asserts that every analyzer in the suite fires
// exactly once — the integration contract for the wile-vet driver.
func TestKnownBadFixture(t *testing.T) {
	diags, err := vet(".", []string{"../../internal/analysis/testdata/knownbad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	counts := make(map[string]int)
	for _, d := range diags {
		t.Logf("diagnostic: %s", d)
		counts[d.Analyzer]++
	}
	suite := analysis.Analyzers()
	if len(diags) != len(suite) {
		t.Errorf("got %d diagnostics, want %d (one per analyzer)", len(diags), len(suite))
	}
	for _, a := range suite {
		if counts[a.Name] != 1 {
			t.Errorf("analyzer %s fired %d times, want exactly 1", a.Name, counts[a.Name])
		}
	}
}

// TestJSONOutput checks the -json wire format: relative slash-separated
// paths, 1-based positions, one object per diagnostic, and a non-null
// empty array for a clean run.
func TestJSONOutput(t *testing.T) {
	diags, err := vet(".", []string{"../../internal/analysis/testdata/knownbad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	buf, err := json.Marshal(toJSON(".", diags))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded []jsonDiagnostic
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(decoded) != len(diags) {
		t.Fatalf("got %d JSON diagnostics, want %d", len(decoded), len(diags))
	}
	for _, d := range decoded {
		if d.File == "" || d.Line <= 0 || d.Column <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if strings.Contains(d.File, "\\") {
			t.Errorf("path %q not slash-separated", d.File)
		}
		if !strings.Contains(d.File, "knownbad") {
			t.Errorf("path %q does not point into the fixture", d.File)
		}
	}
	// Clean runs must serialize as [], never null, so jq iteration in CI
	// does not need a null guard.
	clean, err := json.Marshal(toJSON(".", nil))
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	if string(clean) != "[]" {
		t.Errorf("clean run serializes as %s, want []", clean)
	}
}

// TestPatternExpansion checks that ./... expansion skips testdata trees, so
// the fixture violations never fail "make lint" on the real tree.
func TestPatternExpansion(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	paths, err := loader.Expand(".", []string{"../../..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, p := range paths {
		if p == "wile/internal/analysis/testdata/knownbad" {
			t.Errorf("pattern expansion must skip testdata, found %s", p)
		}
	}
	want := map[string]bool{
		"wile":                   false,
		"wile/internal/sim":      false,
		"wile/cmd/wile-vet":      false,
		"wile/examples/farm":     false,
		"wile/internal/analysis": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern expansion missed %s (got %d packages)", p, len(paths))
		}
	}
}
