package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wile/internal/analysis"
)

// TestKnownBadFixture runs the full multichecker against the known-bad
// fixture package and asserts that every analyzer in the suite fires
// exactly as often as the fixture intends — the integration contract for
// the wile-vet driver. noretain fires twice: once for a direct re-slice
// return and once for aliasing through a local, exercising the flow graph.
// obsguard also fires twice: once for an unguarded recorder hook and once
// for an unguarded frame-provenance hook.
func TestKnownBadFixture(t *testing.T) {
	diags, err := vet(".", []string{"../../internal/analysis/testdata/knownbad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	counts := make(map[string]int)
	total := 0
	for _, d := range diags {
		t.Logf("diagnostic: %s", d)
		counts[d.Analyzer]++
		total++
	}
	for _, a := range analysis.Analyzers() {
		want := 1
		if a.Name == "noretain" || a.Name == "obsguard" {
			want = 2
		}
		if counts[a.Name] != want {
			t.Errorf("analyzer %s fired %d times, want exactly %d", a.Name, counts[a.Name], want)
		}
	}
	if want := len(analysis.Analyzers()) + 2; total != want {
		t.Errorf("got %d diagnostics, want %d", total, want)
	}
}

// TestKnownBadGolden pins the exact -json diagnostic set for the fixture.
// CI replays the same comparison with the built binary (see ci.yml), so a
// behavior change in any analyzer must update testdata/knownbad.json.
func TestKnownBadGolden(t *testing.T) {
	diags, err := vet(".", []string{"../../internal/analysis/testdata/knownbad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	got, err := json.MarshalIndent(toJSON(root, diags), "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile("testdata/knownbad.json")
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("diagnostic set drifted from testdata/knownbad.json:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainFlow checks that flow-graph-backed diagnostics carry the
// supporting path that -explain prints: the alias-through-local noretain
// finding must reference the re-slice that established the aliasing.
func TestExplainFlow(t *testing.T) {
	diags, err := vet(".", []string{"../../internal/analysis/testdata/knownbad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer != "noretain" || len(d.Flow) == 0 {
			continue
		}
		found = true
		for _, s := range d.Flow {
			if s.Pos.Line <= 0 || s.Desc == "" {
				t.Errorf("flow step missing position or description: %+v", s)
			}
		}
	}
	if !found {
		t.Error("no noretain diagnostic carries a flow path; -explain would print nothing")
	}
}

// TestJSONOutput checks the -json wire format: relative slash-separated
// paths, 1-based positions, one object per diagnostic, and a non-null
// empty array for a clean run.
func TestJSONOutput(t *testing.T) {
	diags, err := vet(".", []string{"../../internal/analysis/testdata/knownbad"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	buf, err := json.Marshal(toJSON(".", diags))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded []jsonDiagnostic
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(decoded) != len(diags) {
		t.Fatalf("got %d JSON diagnostics, want %d", len(decoded), len(diags))
	}
	for _, d := range decoded {
		if d.File == "" || d.Line <= 0 || d.Column <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if strings.Contains(d.File, "\\") {
			t.Errorf("path %q not slash-separated", d.File)
		}
		if !strings.Contains(d.File, "knownbad") {
			t.Errorf("path %q does not point into the fixture", d.File)
		}
	}
	// Clean runs must serialize as [], never null, so jq iteration in CI
	// does not need a null guard.
	clean, err := json.Marshal(toJSON(".", nil))
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	if string(clean) != "[]" {
		t.Errorf("clean run serializes as %s, want []", clean)
	}
}

// TestPatternExpansion checks that ./... expansion skips testdata trees, so
// the fixture violations never fail "make lint" on the real tree.
func TestPatternExpansion(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	paths, err := loader.Expand(".", []string{"../../..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, p := range paths {
		if p == "wile/internal/analysis/testdata/knownbad" {
			t.Errorf("pattern expansion must skip testdata, found %s", p)
		}
	}
	want := map[string]bool{
		"wile":                   false,
		"wile/internal/sim":      false,
		"wile/cmd/wile-vet":      false,
		"wile/examples/farm":     false,
		"wile/internal/analysis": false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("pattern expansion missed %s (got %d packages)", p, len(paths))
		}
	}
}
