// Command wile-vet is the multichecker for wile's domain-specific static
// analyzers. It loads and type-checks the requested packages with the
// standard library only (no compiled export data, no network) and applies
// the suite in internal/analysis:
//
//	simclock        no wall-clock time or ambient randomness in sim code
//	unitsafety      no bare numerals becoming unit-typed quantities
//	invariantpanic  panics carry package prefixes, decode paths return errors
//	noretain        encoders never alias caller-provided buffers
//	errdrop         no silently dropped error returns
//
// Usage:
//
//	wile-vet [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 when any diagnostic is reported, so "make lint" fails the
// build. Individual lines are exempted with a "//wile:allow <analyzer>"
// comment on the offending line (or the line above); see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"wile/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wile-vet:", err)
		os.Exit(2)
	}
	diags, err := vet(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wile-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vet loads the packages matched by patterns (resolved against dir) and
// runs the full suite, returning the surviving diagnostics.
func vet(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	paths, err := loader.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return analysis.Run(pkgs, analysis.Analyzers())
}
