// Command wile-vet is the multichecker for wile's domain-specific static
// analyzers. It loads and type-checks the requested packages with the
// standard library only (no compiled export data, no network) and applies
// the suite in internal/analysis:
//
//	simclock        no wall-clock time or ambient randomness in sim code
//	unitsafety      no bare numerals becoming unit-typed quantities
//	invariantpanic  panics carry package prefixes, decode paths return errors
//	noretain        encoders never alias caller-provided buffers (tracked
//	                through locals and re-slices via the value-flow graph)
//	poolsafe        pooled frames and freelist events are never used after
//	                their Release/recycle call, nor released after escaping
//	lockguard       fields annotated "guarded by mu" are only accessed with
//	                the named mutex held
//	errdrop         no silently dropped error returns
//	obsguard        observability hooks are nil-guarded
//
// Usage:
//
//	wile-vet [-list] [-json] [-explain] [-unused-allows] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// status is 1 when any diagnostic is reported, so "make lint" fails the
// build. With -json, diagnostics are emitted as a deterministically sorted
// JSON array (an empty array when the tree is clean) with paths relative
// to the working directory, so CI can turn them into per-line annotations
// and diff the set byte-for-byte. With -explain, each diagnostic is
// followed by the value-flow or lock-state path that supports it. With
// -unused-allows, every "//wile:allow" directive that suppressed nothing
// is itself reported (as the unusedallow pseudo-analyzer), so stale
// suppressions cannot linger. Individual lines are exempted with a
// "//wile:allow <analyzer>" comment on the offending line (or the line
// above); see DESIGN.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wile/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	explain := flag.Bool("explain", false, "print the flow path supporting each diagnostic")
	unusedAllows := flag.Bool("unused-allows", false, "report //wile:allow directives that suppress nothing")
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wile-vet:", err)
		os.Exit(2)
	}
	diags, err := vetChecked(cwd, patterns, *unusedAllows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wile-vet:", err)
		os.Exit(2)
	}
	if *asJSON {
		buf, err := json.MarshalIndent(toJSON(cwd, diags), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "wile-vet:", err)
			os.Exit(2)
		}
		fmt.Println(string(buf))
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *explain {
				for _, s := range d.Flow {
					fmt.Printf("\t%s:%d:%d: %s\n", s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Desc)
				}
			}
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json wire format, one object per finding. The
// array is sorted by (file, line, column, analyzer, message), so output is
// byte-identical across runs and CI can diff it against a pinned golden.
type jsonDiagnostic struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	// EndLine/EndColumn delimit the exclusive end of the flagged source
	// range; both are 0 when only the start position is known.
	EndLine   int    `json:"endLine,omitempty"`
	EndColumn int    `json:"endColumn,omitempty"`
	Analyzer  string `json:"analyzer"`
	Message   string `json:"message"`
}

// toJSON converts diagnostics for machine consumption, relativizing file
// paths against dir so CI annotations resolve inside the checkout. The
// result is never nil, so a clean run marshals as [] rather than null.
func toJSON(dir string, diags []analysis.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(dir, file); err == nil {
			file = rel
		}
		jd := jsonDiagnostic{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if d.End.IsValid() {
			jd.EndLine = d.End.Line
			jd.EndColumn = d.End.Column
		}
		out = append(out, jd)
	}
	return out
}

// vet loads the packages matched by patterns (resolved against dir) and
// runs the full suite, returning the surviving diagnostics.
func vet(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	return vetChecked(dir, patterns, false)
}

// vetChecked is vet with optional stale //wile:allow reporting.
func vetChecked(dir string, patterns []string, unusedAllows bool) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	paths, err := loader.Expand(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return analysis.RunChecked(pkgs, analysis.Analyzers(), unusedAllows)
}
