// Command wile-sensor simulates a Wi-LE IoT sensor and emits the byte-exact
// 802.11 beacon frames it would inject, as hex dumps and/or a pcap capture
// (LINKTYPE_IEEE80211) that standard tooling can open.
//
// Usage:
//
//	wile-sensor -n 5 -device 0x1001 -period 10m -temp 21.5 -pcap out.pcap -hex
//
// With -key a 16-byte pre-shared key (hex) seals every message.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"wile"
	"wile/internal/dot11"
	"wile/internal/pcap"
	"wile/internal/phy"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of readings to transmit")
		deviceID = flag.Uint("device", 0x1001, "device identifier")
		period   = flag.Duration("period", 10*time.Minute, "reporting interval (virtual time)")
		temp     = flag.Float64("temp", 21.5, "starting temperature in °C")
		step     = flag.Float64("step", 0.1, "temperature change per reading")
		channel  = flag.Int("channel", 6, "2.4 GHz channel")
		pcapPath = flag.String("pcap", "", "write frames to this pcap file")
		radiotap = flag.Bool("radiotap", false, "write the pcap with radiotap headers (rate+channel)")
		hexDump  = flag.Bool("hex", false, "print each frame as hex")
		keyHex   = flag.String("key", "", "16-byte pre-shared key (hex) for sealed messages")
	)
	flag.Parse()
	if err := run(*n, uint32(*deviceID), *period, *temp, *step, *channel, *pcapPath, *radiotap, *hexDump, *keyHex); err != nil {
		fmt.Fprintln(os.Stderr, "wile-sensor:", err)
		os.Exit(1)
	}
}

func run(n int, deviceID uint32, period time.Duration, temp, step float64,
	channel int, pcapPath string, radiotap, hexDump bool, keyHex string) error {
	ch, err := phy.NewWiFi24Channel(channel)
	if err != nil {
		return fmt.Errorf("parsing -channel: %w", err)
	}
	var key *wile.Key
	if keyHex != "" {
		secret, err := hex.DecodeString(keyHex)
		if err != nil {
			return fmt.Errorf("parsing -key: %w", err)
		}
		if key, err = wile.NewKey(secret); err != nil {
			return err
		}
	}
	var pw *pcap.Writer
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		link := pcap.LinkTypeIEEE80211
		if radiotap {
			link = pcap.LinkTypeRadiotap
		}
		pw = pcap.NewWriter(f, link)
		defer pw.Flush()
	}

	fmt.Printf("device %08x, channel %d, period %v\n", deviceID, channel, period)
	for i := 0; i < n; i++ {
		msg := &wile.Message{
			DeviceID: deviceID,
			Seq:      uint16(i),
			Readings: []wile.Reading{
				wile.Temperature(temp + float64(i)*step),
				wile.Battery(3000 - 2*i),
				wile.Counter(uint32(i)),
			},
		}
		beacon, err := wile.BuildBeacon(deviceID, channel, msg, key)
		if err != nil {
			return err
		}
		raw, err := dot11.Marshal(beacon)
		if err != nil {
			return err
		}
		at := time.Duration(i) * period
		fmt.Printf("t=%-10v seq=%-4d %5.2f °C  beacon %d bytes (BSSID %v, hidden SSID)\n",
			at, i, temp+float64(i)*step, len(raw), beacon.BSSID())
		if hexDump {
			fmt.Println(hex.EncodeToString(raw))
		}
		if pw != nil {
			data := raw
			if radiotap {
				data = pcap.AppendRadiotap(pcap.RadiotapMeta{RateKbps: 72000, ChannelMHz: ch.FreqMHz}, raw)
			}
			if err := pw.WritePacket(pcap.Packet{Time: at, Data: data}); err != nil {
				return err
			}
		}
	}
	if pcapPath != "" {
		fmt.Println("capture written to", pcapPath)
	}
	return nil
}
