// Command wile-scan decodes Wi-LE sensor data from captured 802.11 frames —
// the "simple application" of §4 that "looks for special beacon frames
// transmitted by IoT devices and extracts their data".
//
// Input is a pcap file (wile-sensor -pcap writes one) or hex frames on
// stdin, one per line:
//
//	wile-scan capture.pcap
//	wile-sensor -n 3 -hex | grep '^8000' | wile-scan -
//
// With -key a 16-byte pre-shared key (hex) unseals encrypted messages.
package main

import (
	"bufio"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"wile"
	"wile/internal/dot11"
	"wile/internal/pcap"
)

func main() {
	keyHex := flag.String("key", "", "16-byte pre-shared key (hex)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wile-scan [-key hex] {capture.pcap | -}")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *keyHex); err != nil {
		fmt.Fprintln(os.Stderr, "wile-scan:", err)
		os.Exit(1)
	}
}

func run(path, keyHex string) error {
	var key *wile.Key
	if keyHex != "" {
		secret, err := hex.DecodeString(keyHex)
		if err != nil {
			return fmt.Errorf("parsing -key: %w", err)
		}
		if key, err = wile.NewKey(secret); err != nil {
			return err
		}
	}
	frames, err := loadFrames(path)
	if err != nil {
		return err
	}
	keyFor := func(uint32) *wile.Key { return key }
	decoded, skipped := 0, 0
	for _, fr := range frames {
		f, err := dot11.Decode(fr.Data)
		if err != nil {
			// Tolerate captures without FCS.
			if f, err = dot11.DecodeNoFCS(fr.Data); err != nil {
				skipped++
				continue
			}
		}
		beacon, ok := f.(*dot11.Beacon)
		if !ok {
			skipped++
			continue
		}
		msg, err := wile.DecodeBeacon(beacon, keyFor)
		if err != nil {
			skipped++
			continue
		}
		decoded++
		fmt.Printf("t=%-12v device=%08x seq=%-4d", fr.Time, msg.DeviceID, msg.Seq)
		for _, r := range msg.Readings {
			fmt.Printf("  %s", formatReading(r))
		}
		if msg.RxWindow > 0 {
			fmt.Printf("  [rx-window %v]", msg.RxWindow)
		}
		if msg.Downlink {
			fmt.Printf("  [downlink]")
		}
		fmt.Println()
	}
	fmt.Printf("%d Wi-LE messages decoded, %d other frames skipped\n", decoded, skipped)
	return nil
}

func formatReading(r wile.Reading) string {
	switch r.Type {
	case wile.ReadingTemperature:
		return fmt.Sprintf("%.2f°C", r.Celsius())
	case wile.ReadingHumidity:
		return fmt.Sprintf("%.1f%%RH", r.Percent())
	case wile.ReadingBatteryMV:
		return fmt.Sprintf("%dmV", r.Value)
	case wile.ReadingCounter:
		return fmt.Sprintf("count=%d", r.Value)
	default:
		return fmt.Sprintf("raw=%q", r.Raw)
	}
}

type frame struct {
	Time time.Duration
	Data []byte
}

func loadFrames(path string) ([]frame, error) {
	if path == "-" {
		return readHex(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return nil, err
	}
	pkts, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([]frame, 0, len(pkts))
	for _, p := range pkts {
		data := p.Data
		if r.LinkType() == pcap.LinkTypeRadiotap {
			inner, _, err := pcap.StripRadiotap(data)
			if err != nil {
				continue // tolerate malformed radiotap records
			}
			data = inner
		}
		out = append(out, frame{Time: p.Time, Data: data})
	}
	return out, nil
}

func readHex(r io.Reader) ([]frame, error) {
	var out []frame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		data, err := hex.DecodeString(text)
		if err != nil {
			return nil, fmt.Errorf("stdin line %d: %w", line, err)
		}
		out = append(out, frame{Data: data})
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	return out, nil
}
