// Command wile-trace exports the Figure 3 current traces for plotting and
// timeline inspection: the 50 kSa/s waveform of a WiFi-DC transmission
// (fig3a) and of a Wi-LE transmission (fig3b), with phase annotations.
//
// Usage:
//
//	wile-trace fig3a > fig3a.csv
//	wile-trace fig3b > fig3b.csv
//	wile-trace -perfetto fig3b > fig3b.json   # open at https://ui.perfetto.dev
//	wile-trace -metrics metrics.json fig3b > fig3b.csv
//	wile-trace -drops fig3a                   # frame-provenance drop report
//	wile-trace -drops -json fig3a             # same report, machine-readable
//
// -perfetto replaces the CSV with a Chrome trace-event JSON timeline: one
// track per device/MAC layer plus the meter's current as a counter lane.
// -sched additionally records every scheduler dispatch as an instant (the
// firehose view; large) — the recording streams through a temporary spill
// file, so memory stays bounded no matter how long the run. -metrics
// snapshots the run's counters to a file.
//
// -drops wires a frame-provenance ledger into the run: every transmitted
// frame resolves to exactly one outcome per potential receiver (delivered,
// or one reason from the drop taxonomy), and the per-reason × per-link
// report replaces the waveform CSV on stdout (-json selects the JSON form).
// Combined with -perfetto, the timeline goes to stdout — with one instant
// per drop on per-radio "<name> drops" tracks — and the report to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wile/internal/experiment"
	"wile/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wile-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	perfetto := fs.Bool("perfetto", false, "write a Chrome trace-event JSON timeline instead of CSV")
	metrics := fs.String("metrics", "", "write a metrics snapshot (JSON) to this file")
	sched := fs.Bool("sched", false, "with -perfetto, also trace every scheduler dispatch (large)")
	drops := fs.Bool("drops", false, "report frame-provenance outcomes (per drop reason and per link)")
	jsonOut := fs.Bool("json", false, "with -drops, emit the report as JSON")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: wile-trace [-perfetto] [-metrics file] [-sched] [-drops [-json]] {fig3a|fig3b}")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var runner func(*experiment.Obs) (*experiment.Trace, error)
	switch fs.Arg(0) {
	case "fig3a":
		runner = experiment.RunFig3aObs
	case "fig3b":
		runner = experiment.RunFig3bObs
	default:
		fmt.Fprintf(stderr, "wile-trace: unknown trace %q\n", fs.Arg(0))
		return 2
	}
	if *sched && !*perfetto {
		fmt.Fprintln(stderr, "wile-trace: -sched requires -perfetto")
		return 2
	}
	if *jsonOut && !*drops {
		fmt.Fprintln(stderr, "wile-trace: -json requires -drops")
		return 2
	}

	o := experiment.Obs{Sched: *sched}
	if *perfetto {
		if *sched {
			// The firehose view records one instant per scheduler dispatch
			// and meter sample — far past what buffering in memory should
			// cost. Stream through a bounded-memory spill file instead; the
			// export bytes are identical to the buffered recorder's.
			spill, err := obs.NewSpillSink("")
			if err != nil {
				return fatal(stderr, err)
			}
			defer spill.Close()
			o.Rec = obs.NewStreamRecorder(spill)
		} else {
			o.Rec = obs.NewRecorder()
		}
	}
	if *metrics != "" {
		o.Reg = obs.NewRegistry()
	}
	if *drops {
		o.Prov = obs.NewProvenance()
	}
	tr, err := runner(&o)
	if err != nil {
		return fatal(stderr, err)
	}
	switch {
	case *perfetto:
		if err := o.Rec.WriteChromeTrace(stdout); err != nil {
			return fatal(stderr, err)
		}
	case *drops:
		// The drop report replaces the waveform CSV.
		if err := writeDrops(o.Prov, stdout, *jsonOut); err != nil {
			return fatal(stderr, err)
		}
	default:
		if err := tr.WriteCSV(stdout); err != nil {
			return fatal(stderr, err)
		}
	}
	if *perfetto && *drops {
		// The timeline owns stdout; the report goes alongside on stderr.
		if err := writeDrops(o.Prov, stderr, *jsonOut); err != nil {
			return fatal(stderr, err)
		}
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			return fatal(stderr, err)
		}
		if err := o.Reg.WriteJSON(f); err != nil {
			_ = f.Close()
			return fatal(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintln(stderr, "wile-trace: metrics written to", *metrics)
	}
	return 0
}

// writeDrops emits the provenance report in the selected format.
func writeDrops(p *obs.Provenance, w io.Writer, asJSON bool) error {
	if asJSON {
		return p.WriteReportJSON(w)
	}
	return p.WriteReport(w)
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "wile-trace:", err)
	return 1
}
