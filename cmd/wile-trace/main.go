// Command wile-trace exports the Figure 3 current traces for plotting and
// timeline inspection: the 50 kSa/s waveform of a WiFi-DC transmission
// (fig3a) and of a Wi-LE transmission (fig3b), with phase annotations.
//
// Usage:
//
//	wile-trace fig3a > fig3a.csv
//	wile-trace fig3b > fig3b.csv
//	wile-trace -perfetto fig3b > fig3b.json   # open at https://ui.perfetto.dev
//	wile-trace -metrics metrics.json fig3b > fig3b.csv
//
// -perfetto replaces the CSV with a Chrome trace-event JSON timeline: one
// track per device/MAC layer plus the meter's current as a counter lane.
// -sched additionally records every scheduler dispatch as an instant (the
// firehose view; large) — the recording streams through a temporary spill
// file, so memory stays bounded no matter how long the run. -metrics
// snapshots the run's counters to a file.
package main

import (
	"flag"
	"fmt"
	"os"

	"wile/internal/experiment"
	"wile/internal/obs"
)

func main() {
	perfetto := flag.Bool("perfetto", false, "write a Chrome trace-event JSON timeline instead of CSV")
	metrics := flag.String("metrics", "", "write a metrics snapshot (JSON) to this file")
	sched := flag.Bool("sched", false, "with -perfetto, also trace every scheduler dispatch (large)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: wile-trace [-perfetto] [-metrics file] [-sched] {fig3a|fig3b}")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var runner func(*experiment.Obs) (*experiment.Trace, error)
	switch flag.Arg(0) {
	case "fig3a":
		runner = experiment.RunFig3aObs
	case "fig3b":
		runner = experiment.RunFig3bObs
	default:
		fmt.Fprintf(os.Stderr, "wile-trace: unknown trace %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *sched && !*perfetto {
		fmt.Fprintln(os.Stderr, "wile-trace: -sched requires -perfetto")
		os.Exit(2)
	}

	o := experiment.Obs{Sched: *sched}
	if *perfetto {
		if *sched {
			// The firehose view records one instant per scheduler dispatch
			// and meter sample — far past what buffering in memory should
			// cost. Stream through a bounded-memory spill file instead; the
			// export bytes are identical to the buffered recorder's.
			spill, err := obs.NewSpillSink("")
			if err != nil {
				fatal(err)
			}
			defer spill.Close()
			o.Rec = obs.NewStreamRecorder(spill)
		} else {
			o.Rec = obs.NewRecorder()
		}
	}
	if *metrics != "" {
		o.Reg = obs.NewRegistry()
	}
	tr, err := runner(&o)
	if err != nil {
		fatal(err)
	}
	switch {
	case *perfetto:
		if err := o.Rec.WriteChromeTrace(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		if err := tr.WriteCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := o.Reg.WriteJSON(f); err != nil {
			_ = f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "wile-trace: metrics written to", *metrics)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wile-trace:", err)
	os.Exit(1)
}
