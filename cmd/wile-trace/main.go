// Command wile-trace exports the Figure 3 current traces as CSV for
// plotting: the 50 kSa/s waveform of a WiFi-DC transmission (fig3a) and of
// a Wi-LE transmission (fig3b), with phase annotations as comment lines.
//
// Usage:
//
//	wile-trace fig3a > fig3a.csv
//	wile-trace fig3b > fig3b.csv
package main

import (
	"fmt"
	"os"

	"wile/internal/experiment"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: wile-trace {fig3a|fig3b}")
		os.Exit(2)
	}
	var runner func() (*experiment.Trace, error)
	switch os.Args[1] {
	case "fig3a":
		runner = experiment.RunFig3a
	case "fig3b":
		runner = experiment.RunFig3b
	default:
		fmt.Fprintf(os.Stderr, "wile-trace: unknown trace %q\n", os.Args[1])
		os.Exit(2)
	}
	tr, err := runner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wile-trace:", err)
		os.Exit(1)
	}
	if err := tr.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wile-trace:", err)
		os.Exit(1)
	}
}
