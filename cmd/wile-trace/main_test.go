package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDropsReportGolden pins the byte-for-byte output of
// `wile-trace -drops -json fig3a`: the JSON drop report over the fully
// deterministic Figure 3a world. Any change to frame accounting, the drop
// taxonomy, report ordering or serialization shows up here. Regenerate with
// WILE_UPDATE_GOLDEN=1 when the change is intentional.
func TestDropsReportGolden(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-drops", "-json", "fig3a"}, &out, io.Discard); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	golden := filepath.Join("testdata", "fig3a_drops.json")
	if os.Getenv("WILE_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (rerun with WILE_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("drop report diverged from golden (%d vs %d bytes); rerun with WILE_UPDATE_GOLDEN=1 if the change is intentional\ngot:\n%s",
			out.Len(), len(want), out.String())
	}
}

// TestDropsReportText sanity-checks the human-readable form: the header,
// the closed outcome table and at least one link row.
func TestDropsReportText(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-drops", "fig3b"}, &out, io.Discard); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	text := out.String()
	for _, want := range []string{"frames ", "delivered", "radio_off", "links:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestJSONRequiresDrops pins the flag contract.
func TestJSONRequiresDrops(t *testing.T) {
	var errBuf bytes.Buffer
	if code := run([]string{"-json", "fig3a"}, io.Discard, &errBuf); code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "-json requires -drops") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}
