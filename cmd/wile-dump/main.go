// Command wile-dump prints every 802.11 frame in a pcap capture, one line
// per frame in tcpdump style, with Wi-LE message contents decoded inline —
// the debugging loupe for anything the other tools produce.
//
// Usage:
//
//	wile-sensor -n 3 -pcap cap.pcap && wile-dump cap.pcap
//	wile-dump -key <hex> cap.pcap        # unseal encrypted Wi-LE payloads
//
// Raw (LINKTYPE_IEEE80211) and radiotap captures are both accepted; for
// radiotap the rate/channel metadata is shown when present.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"wile"
	"wile/internal/dot11"
	"wile/internal/pcap"
)

func main() {
	keyHex := flag.String("key", "", "16-byte pre-shared key (hex) for sealed Wi-LE payloads")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wile-dump [-key hex] capture.pcap")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *keyHex); err != nil {
		fmt.Fprintln(os.Stderr, "wile-dump:", err)
		os.Exit(1)
	}
}

func run(path, keyHex string) error {
	var key *wile.Key
	if keyHex != "" {
		secret, err := hex.DecodeString(keyHex)
		if err != nil {
			return fmt.Errorf("parsing -key: %w", err)
		}
		if key, err = wile.NewKey(secret); err != nil {
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}
	pkts, err := r.ReadAll()
	if err != nil {
		return err
	}
	keyFor := func(uint32) *wile.Key { return key }
	undecoded := 0
	for _, p := range pkts {
		data := p.Data
		meta := ""
		if r.LinkType() == pcap.LinkTypeRadiotap {
			inner, rt, err := pcap.StripRadiotap(data)
			if err != nil {
				undecoded++
				continue
			}
			data = inner
			if rt.RateKbps > 0 {
				meta = fmt.Sprintf(" (%.1f Mb/s, %d MHz)", float64(rt.RateKbps)/1000, rt.ChannelMHz)
			}
		}
		frame, err := dot11.Decode(data)
		if err != nil {
			// Tolerate captures without FCS.
			if frame, err = dot11.DecodeNoFCS(data); err != nil {
				undecoded++
				fmt.Printf("%-12v undecodable %d-byte frame: %v\n", p.Time, len(data), err)
				continue
			}
		}
		fmt.Printf("%-12v %s%s\n", p.Time, dot11.Summarize(frame), meta)
		// Inline Wi-LE decode for beacons that carry our elements; foreign
		// beacons and undecryptable payloads stay as their summary line.
		if b, ok := frame.(*dot11.Beacon); ok {
			if msg, err := wile.DecodeBeacon(b, keyFor); err == nil {
				fmt.Printf("%12s └─ wile device=%08x seq=%d readings=%d%s\n",
					"", msg.DeviceID, msg.Seq, len(msg.Readings), wileFlags(msg))
			}
		}
	}
	fmt.Printf("%d frames, %d undecodable\n", len(pkts), undecoded)
	return nil
}

func wileFlags(m *wile.Message) string {
	out := ""
	if m.RxWindow > 0 {
		out += fmt.Sprintf(" rx-window=%v", m.RxWindow)
	}
	if m.Downlink {
		out += " downlink"
	}
	return out
}
