// Command wile-lab regenerates the paper's evaluation: Table 1, Figures 3a,
// 3b and 4, the §3.1 frame-count claims, and the ablation studies.
//
// Usage:
//
//	wile-lab table1               # energy/packet + idle current comparison
//	wile-lab fig3a                # WiFi-DC current trace (ASCII + CSV)
//	wile-lab fig3b                # Wi-LE current trace (ASCII + CSV)
//	wile-lab fig4                 # average power vs interval (ASCII + CSV)
//	wile-lab claims               # §3.1 frame counts
//	wile-lab ablations            # bitrate/payload/listen-interval/jitter/SSID
//	wile-lab density              # beacon collision/delivery vs device count
//	wile-lab all                  # everything except the density sweep
//
// The density sweep scales to 100k+ beaconing devices; -devices overrides
// the default population list (comma-separated counts).
//
// CSVs land in the directory named by -out (default "results").
// -metrics writes a JSON snapshot of the run's counters, gauges and
// histograms (MAC traffic, engine sweeps, per-experiment energy) to a file.
// -trace additionally writes Chrome trace-event timelines for the fig3a and
// fig3b runs (streamed through a bounded-memory spill file; open the JSON at
// https://ui.perfetto.dev).
// -series samples the fig3a/fig3b registries on a 10 ms sim-time cadence and
// writes the timeline as <figure>_series.csv — the counters' evolution over
// the run, not just their final values.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"wile/internal/battery"
	"wile/internal/energy"
	"wile/internal/experiment"
	"wile/internal/obs"
	"wile/internal/pcap"
	"wile/internal/units"
)

func main() {
	out := flag.String("out", "results", "directory for CSV outputs")
	metrics := flag.String("metrics", "", "write a metrics snapshot (JSON) to this file")
	trace := flag.Bool("trace", false, "also write Chrome trace-event JSON timelines for fig3a/fig3b")
	series := flag.Bool("series", false, "also write sim-time metric timelines (CSV) for fig3a/fig3b")
	devices := flag.String("devices", "", "density sweep population sizes (comma-separated, e.g. 1000,10000,100000)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		defer experiment.SetMetrics(experiment.SetMetrics(reg))
	}
	traceTimelines = *trace
	seriesTimelines = *series
	densityDevices = *devices
	if err := run(flag.Arg(0), *out); err != nil {
		fmt.Fprintln(os.Stderr, "wile-lab:", err)
		os.Exit(1)
	}
	if reg != nil {
		if err := writeFile(*metrics, reg.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "wile-lab:", err)
			os.Exit(1)
		}
		fmt.Println("metrics written to", *metrics)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wile-lab [-out dir] [-metrics file] [-trace] [-series] [-devices list] {table1|fig3a|fig3b|fig4|claims|joincap|ablations|density|all}")
}

// traceTimelines and seriesTimelines mirror the -trace and -series flags
// for the fig3 runs; densityDevices mirrors -devices for the density sweep.
var traceTimelines, seriesTimelines bool
var densityDevices string

func run(cmd, out string) error {
	switch cmd {
	case "table1":
		return table1()
	case "fig3a":
		return fig3(out, "fig3a", experiment.RunFig3aObs)
	case "fig3b":
		return fig3(out, "fig3b", experiment.RunFig3bObs)
	case "fig4":
		return fig4(out)
	case "claims":
		return claims()
	case "joincap":
		return joincap(out)
	case "ablations":
		return ablations()
	case "density":
		return density(out)
	case "all":
		for _, step := range []func() error{
			table1,
			func() error { return fig3(out, "fig3a", experiment.RunFig3aObs) },
			func() error { return fig3(out, "fig3b", experiment.RunFig3bObs) },
			func() error { return fig4(out) },
			claims,
			ablations,
		} {
			if err := step(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	usage()
	return fmt.Errorf("unknown experiment %q", cmd)
}

// joincap writes a pcap of a complete join for external tooling.
func joincap(out string) error {
	packets, err := experiment.RunJoinCapture()
	if err != nil {
		return err
	}
	path := filepath.Join(out, "join.pcap")
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := pcap.NewWriter(f, pcap.LinkTypeIEEE80211)
	for _, p := range packets {
		if err := w.WritePacket(p); err != nil {
			return err
		}
	}
	fmt.Printf("%d frames written to %s (inspect with wile-dump)\n", len(packets), path)
	return nil
}

// density runs the city-scale beacon density sweep (DESIGN.md §12,
// EXPERIMENTS.md): collision rate and delivery probability vs device count.
func density(out string) error {
	cfg := experiment.DefaultDensityConfig()
	if densityDevices != "" {
		cfg.Devices = nil
		for _, field := range strings.Split(densityDevices, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -devices entry %q (want positive counts)", field)
			}
			cfg.Devices = append(cfg.Devices, n)
		}
	}
	fmt.Printf("Density sweep: %d-byte beacons at %v every %v, %gx%g m field, %v window\n",
		cfg.Payload, cfg.Rate, cfg.Period, cfg.Side, cfg.Side, cfg.Window)
	start := time.Now()
	points, err := experiment.RunDensitySweep(cfg)
	if err != nil {
		return err
	}
	experiment.RenderDensity(os.Stdout, points)
	fmt.Printf("swept %d points in %v\n", len(points), time.Since(start).Round(time.Millisecond))
	path := filepath.Join(out, "density.csv")
	if err := writeFile(path, func(w io.Writer) error { return experiment.WriteDensityCSV(w, points) }); err != nil {
		return err
	}
	fmt.Println("sweep written to", path)
	return nil
}

func table1() error {
	res, err := experiment.RunTable1()
	if err != nil {
		return err
	}
	res.Render(os.Stdout)
	return nil
}

func fig3(out, name string, runner func(*experiment.Obs) (*experiment.Trace, error)) error {
	// The figure worlds are built per-run, so the package registry (if any)
	// is threaded in explicitly; a nil registry keeps the disabled path.
	o := experiment.Obs{Reg: experiment.Metrics()}
	if traceTimelines {
		// The timeline streams through a bounded-memory spill file; the
		// exported bytes match the in-memory recorder exactly.
		spill, err := obs.NewSpillSink("")
		if err != nil {
			return err
		}
		defer spill.Close()
		o.Rec = obs.NewStreamRecorder(spill)
	}
	if seriesTimelines {
		// Sampling needs a registry; run on a local one when -metrics
		// didn't install the package registry.
		if o.Reg == nil {
			o.Reg = obs.NewRegistry()
		}
		o.Series = obs.NewTimeSeries(o.Reg, obs.NewMemorySink(), 0)
	}
	tr, err := runner(&o)
	if err != nil {
		return err
	}
	fmt.Printf("Figure %s (energy over the 2 s window: %s)\n",
		name[3:], energy.FormatJoules(tr.Energy))
	tr.RenderASCII(os.Stdout, 78, 14)
	path := filepath.Join(out, name+".csv")
	if err := writeFile(path, tr.WriteCSV); err != nil {
		return err
	}
	tr.Release()
	fmt.Println("trace written to", path)
	if traceTimelines {
		path := filepath.Join(out, name+"_timeline.json")
		if err := writeFile(path, o.Rec.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Println("timeline written to", path, "(open at https://ui.perfetto.dev)")
	}
	if seriesTimelines {
		if err := o.Series.Err(); err != nil {
			return err
		}
		path := filepath.Join(out, name+"_series.csv")
		if err := writeFile(path, o.Series.WriteCSV); err != nil {
			return err
		}
		fmt.Println("metric series written to", path)
	}
	return nil
}

func fig4(out string) error {
	table, err := experiment.RunTable1()
	if err != nil {
		return err
	}
	fig := experiment.RunFig4(table, nil)
	fig.RenderASCII(os.Stdout, 72, 18)
	path := filepath.Join(out, "fig4.csv")
	if err := writeFile(path, fig.WriteCSV); err != nil {
		return err
	}
	fmt.Println("series written to", path)
	return nil
}

func claims() error {
	c, err := experiment.RunClaims()
	if err != nil {
		return err
	}
	c.Render(os.Stdout)
	return nil
}

func ablations() error {
	points, err := experiment.RunBitrateAblation()
	if err != nil {
		return err
	}
	experiment.RenderBitrate(os.Stdout, points)

	fmt.Println("\nAblation: payload size vs beacon cost (fragmentation at 243 B)")
	payload, err := experiment.RunPayloadAblation([]int{8, 64, 128, 243, 244, 486, 600})
	if err != nil {
		return err
	}
	fmt.Printf("%8s %6s %8s %10s %12s\n", "payload", "frags", "beacon", "airtime", "energy")
	for _, p := range payload {
		fmt.Printf("%7dB %6d %7dB %10s %12s\n",
			p.PayloadBytes, p.Fragments, p.BeaconBytes, p.Airtime, energy.FormatJoules(p.Energy))
	}

	fmt.Println("\nAblation: WiFi-PS idle current vs listen interval (Table 1 uses LI=3)")
	for _, p := range experiment.RunListenIntervalAblation() {
		fmt.Printf("  LI=%-2d  %s\n", p.ListenInterval, energy.FormatAmps(p.IdleCurrent))
	}

	fmt.Println("\nStudy: §6 clock-jitter self-desynchronization (2 co-periodic sensors)")
	for _, p := range experiment.RunJitterStudy(nil, 200) {
		fmt.Printf("  %5.0f ppm: delivery %5.1f%%  (%d/%d, %d collisions, %d/%d cycles contended)\n",
			p.PPM, p.DeliveryRate*100, p.Delivered, p.Expected, p.Collisions, p.ContendedCycles, p.Cycles)
	}

	fmt.Println("\nStudy: Wi-LE on a crowded channel (non-CSMA interferer, §1's motivation)")
	for _, p := range experiment.RunInterferenceStudy(nil) {
		fmt.Printf("  %3.0f%% occupied: delivery %5.1f%%, mean deferral %8v, %d collisions\n",
			p.Duty*100, p.DeliveryRate*100, p.MeanDelay.Round(time.Microsecond), p.Collisions)
	}

	fmt.Println("\nStudy: hopping-receiver capture rate vs channel count (the 5 GHz trade)")
	for _, p := range experiment.RunHopperStudy(nil) {
		fmt.Printf("  %d channel(s), %v dwell: captured %d/%d (%.0f%%)\n",
			p.Channels, p.Dwell, p.Captured, p.Transmitted, p.CaptureRate*100)
	}

	carriers, err := experiment.RunCarrierAblation()
	if err != nil {
		return err
	}
	fmt.Println("\nAblation: carrier frame choice (§4 — why beacons)")
	fmt.Printf("  %-16s %6s %10s %10s  %s\n", "carrier", "bytes", "airtime", "energy", "stock receivers")
	for _, c := range carriers {
		fmt.Printf("  %-16s %5dB %10s %10s  %s\n",
			c.Carrier, c.Bytes, c.Airtime, energy.FormatJoules(c.Energy), c.Receivable)
	}

	ssid, err := experiment.RunHiddenSSIDAblation()
	if err != nil {
		return err
	}
	fmt.Println("\nAblation: hidden vs visible SSID")
	fmt.Printf("  hidden  %3d B on air, %v\n", ssid.HiddenBytes, ssid.HiddenAirtime)
	fmt.Printf("  visible %3d B on air, %v\n", ssid.VisibleBytes, ssid.VisibleAirtime)

	table, err := experiment.RunTable1()
	if err != nil {
		return err
	}
	fmt.Println("\nProjection: CR2032 coin-cell life at 1-minute reporting")
	for _, p := range experiment.RunBatteryProjection(table, time.Minute) {
		fmt.Printf("  %-8s %s\n", p.Name, formatLife(p.Life))
	}

	fast, err := experiment.MeasureWiFiDCFast()
	if err != nil {
		return err
	}
	dc, err := experiment.MeasureWiFiDC()
	if err != nil {
		return err
	}
	fmt.Println("\nAblation: cached-lease fast rejoin (skip DHCP/ARP on wake)")
	fmt.Printf("  full rejoin   %s over %v\n", energy.FormatJoules(dc.Energy), dc.Duration.Round(time.Millisecond))
	fmt.Printf("  cached lease  %s over %v — still ≈3 orders above Wi-LE\n",
		energy.FormatJoules(fast.Energy), fast.Duration.Round(time.Millisecond))

	good, err := experiment.RunGoodputStudy()
	if err != nil {
		return err
	}
	fmt.Println("\nComparison: payload and energy per byte (the data-rate claim)")
	fmt.Printf("  Wi-LE: %d B per element (%d B max/beacon), %.2f µJ/B\n",
		good.WiLEPayloadPerMsg, good.WiLEMaxPerBeacon, good.WiLEJoulesPerByte*1e6)
	fmt.Printf("  BLE:   %d B per advertisement, %.2f µJ/B\n",
		good.BLEPayloadPerMsg, good.BLEJoulesPerByte*1e6)

	cap10, err := experiment.RunCapacityStudy(10 * time.Minute)
	if err != nil {
		return err
	}
	cap1, err := experiment.RunCapacityStudy(time.Minute)
	if err != nil {
		return err
	}
	fmt.Println("\nCapacity: Wi-LE devices one channel sustains (10% airtime, §6 scale)")
	fmt.Printf("  %v airtime per injection (frame %v + DCF overhead)\n", cap10.PerTxAirtime, cap10.BeaconAirtime)
	fmt.Printf("  at 10-minute reporting: ~%d devices/channel\n", cap10.MaxAt10Util)
	fmt.Printf("  at  1-minute reporting: ~%d devices/channel\n", cap1.MaxAt10Util)

	fmt.Println("\nFeasibility: sourcing the 180 mA WiFi transmit burst")
	const brownoutV = units.Volts(2.43)
	const txBurst = units.Amps(0.18)
	burst := 150 * time.Microsecond
	for _, chem := range []battery.Chemistry{battery.CR2032, battery.AA2, battery.LiSOCl2AA} {
		cell := battery.NewCell(chem)
		if cell.CanSupply(txBurst, brownoutV) {
			fmt.Printf("  %-12s supplies the burst directly (rail %.2f V)\n",
				chem.Name, float64(cell.TerminalV(txBurst)))
			continue
		}
		need := battery.MinCapacitor(cell.TerminalV(0), brownoutV, txBurst, burst)
		fmt.Printf("  %-12s sags to %.2f V — needs a ≥%.0f µF bulk capacitor\n",
			chem.Name, float64(cell.TerminalV(txBurst)), need.Micro())
	}
	return nil
}

func formatLife(d time.Duration) string {
	days := d.Hours() / 24
	switch {
	case days > 3650:
		return fmt.Sprintf("%.0f years (idle-dominated)", days/365)
	case days > 365:
		return fmt.Sprintf("%.1f years", days/365)
	default:
		return fmt.Sprintf("%.1f days", days)
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
