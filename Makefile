# Wi-LE reproduction — common workflows.

GO ?= go

.PHONY: all build test lint race bench lab examples fuzz cover clean

all: build test lint race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Static analysis: go vet plus the project's own wile-vet suite (simclock,
# unitsafety, invariantpanic, noretain, poolsafe, lockguard, errdrop,
# obsguard). -unused-allows also fails the build on stale //wile:allow
# directives, so suppressions cannot outlive the code they excused.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/wile-vet -unused-allows ./...

race:
	$(GO) test -race ./...

# The full evaluation: Table 1, Figures 3a/3b/4, §3.1 claims, ablations.
lab:
	$(GO) run ./cmd/wile-lab -out results all

# Benchmark trajectory: raw output under results/, plus the
# machine-readable baseline future PRs diff ns/op and µJ/pkt against.
bench:
	mkdir -p results
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee results/bench_output.txt
	$(GO) run ./scripts/benchjson -in results/bench_output.txt -out BENCH_baseline.json

# Record the artifacts EXPERIMENTS.md references.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/farm
	$(GO) run ./examples/smartphone
	$(GO) run ./examples/twoway
	$(GO) run ./examples/secure
	$(GO) run ./examples/wardrive
	$(GO) run ./examples/metering

# Short fuzz sessions on every fuzz target (extend -fuzztime for real runs).
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/dot11/
	$(GO) test -fuzz=FuzzParseElements -fuzztime=30s ./internal/dot11/
	$(GO) test -fuzz=FuzzParseFragment -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReadingsRoundTrip -fuzztime=30s ./internal/core/

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf results cover.out test_output.txt bench_output.txt
