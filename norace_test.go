//go:build !race

package wile_test

// raceEnabled gates steady-state allocation assertions; see race_test.go.
const raceEnabled = false
