module wile

go 1.22
