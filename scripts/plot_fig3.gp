# Redraw Figure 3 from the exported traces:
#   go run ./cmd/wile-trace fig3a > results/fig3a.csv
#   go run ./cmd/wile-trace fig3b > results/fig3b.csv
#   gnuplot -e "trace='results/fig3a.csv'" scripts/plot_fig3.gp > fig3a.svg
if (!exists("trace")) trace = 'results/fig3a.csv'

set terminal svg size 900,360 font 'Helvetica,13'
set datafile separator ','
set xlabel 'Time (Second)'
set ylabel 'Current Draw (mA)'
set xrange [0:2]
set yrange [0:250]
set grid back lw 0.5
set key off

plot trace using 1:2 with lines lw 1 lc rgb '#2060a8'
