# Redraw Figure 4 from the exported sweep:
#   go run ./cmd/wile-lab -out results fig4
#   gnuplot scripts/plot_fig4.gp > fig4.svg
set terminal svg size 700,480 font 'Helvetica,13'
set datafile separator ','
set xlabel 'Transmission Interval (Minute)'
set ylabel 'Power (mW)'
set logscale y
set format y "10^{%L}"
set xrange [0:5]
set grid back lw 0.5
set key top right

# Columns: 1 interval_s, 2 Wi-LE_mW, 3 BLE_mW, 4 WiFi-DC_mW, 5 WiFi-PS_mW.
plot 'results/fig4.csv' using ($1/60):5 with lines lw 2 title 'WiFi-PS', \
     ''                 using ($1/60):4 with lines lw 2 title 'WiFi-DC', \
     ''                 using ($1/60):2 with lines lw 2 title 'WiLE', \
     ''                 using ($1/60):3 with lines lw 2 title 'BLE'
