// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_baseline.json this repository tracks benchmark
// trajectories with. Besides the standard ns/op, B/op and allocs/op
// columns it keeps every custom metric (µJ/pkt, crossover-s, ...) and
// derives a speedup entry for each benchmark that reports paired
// <name>/serial and <name>/parallel sub-benchmarks, so a future PR can
// diff both the paper's reproduced quantities and the engine's scaling
// against this baseline with jq alone.
//
// Two further derivations support the observability layer's zero-cost
// contract: every BenchmarkObsDisabled/<X> sub-benchmark is paired with
// its reference Benchmark<X> from the same run (obs_pairs, with the
// allocation delta the disabled path added), and -baseline diffs the whole
// run against a previously recorded baseline file (deltas_vs_baseline).
//
// `benchjson -compare old.json new.json` renders the per-lane delta
// between two recorded baselines as a markdown table — CI appends it to
// the GitHub step summary so benchmark movement is visible on every run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with any -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (1 when unsuffixed).
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present only with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (µJ/pkt, crossover-s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup compares a benchmark's serial and parallel variants.
type Speedup struct {
	Benchmark       string  `json:"benchmark"`
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	// Speedup is serial/parallel wall-clock; ≈1.0 on a single-core
	// runner, approaching the worker count on a wide machine.
	Speedup float64 `json:"speedup"`
}

// ObsPair compares an ObsDisabled sub-benchmark with its reference
// benchmark from the same run. AddedAllocsPerOp must stay 0: the disabled
// observability path is contractually free of allocations.
type ObsPair struct {
	Benchmark        string  `json:"benchmark"`
	DisabledNsPerOp  float64 `json:"disabled_ns_per_op"`
	ReferenceNsPerOp float64 `json:"reference_ns_per_op"`
	AddedAllocsPerOp float64 `json:"added_allocs_per_op"`
}

// Delta is one benchmark's movement against a previous baseline file.
type Delta struct {
	Name string `json:"name"`
	// NsPerOpPct is the relative ns/op change ((new-old)/old, percent).
	NsPerOpPct float64 `json:"ns_per_op_pct"`
	// AllocsPerOpDiff is the absolute allocs/op change, when both runs
	// recorded it.
	AllocsPerOpDiff *float64 `json:"allocs_per_op_diff,omitempty"`
}

// Baseline is the output document.
type Baseline struct {
	Source     string      `json:"source"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
	ObsPairs   []ObsPair   `json:"obs_pairs,omitempty"`
	Deltas     []Delta     `json:"deltas_vs_baseline,omitempty"`
}

func main() {
	in := flag.String("in", "results/bench_output.txt", "bench output to parse")
	out := flag.String("out", "BENCH_baseline.json", "JSON file to write")
	baseline := flag.String("baseline", "", "previous baseline JSON to diff ns/op and allocs/op against")
	gate := flag.Bool("gate", false, "exit nonzero when the diff against -baseline regresses (ns/op beyond -gate-threshold, or any allocs/op increase)")
	gateThreshold := flag.Float64("gate-threshold", 25, "ns/op regression percentage the -gate tolerates")
	compare := flag.Bool("compare", false, "compare two baseline JSON files (old new) and print a per-lane markdown delta table to stdout")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare takes exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *gate && *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -gate requires -baseline")
		os.Exit(2)
	}
	if err := run(*in, *out, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *gate {
		if regressions := checkGate(*out, *gateThreshold); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchjson: gate:", r)
			}
			os.Exit(1)
		}
	}
}

// loadBaseline reads and parses one baseline JSON document.
func loadBaseline(path string) (Baseline, error) {
	var doc Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

// runCompare prints a per-lane markdown delta table between two baseline
// documents — the format CI appends to the GitHub step summary. Lanes
// present in only one file are listed after the table so a silently
// dropped benchmark is visible in review.
func runCompare(w io.Writer, oldPath, newPath string) error {
	oldDoc, err := loadBaseline(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := loadBaseline(newPath)
	if err != nil {
		return err
	}
	old := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		old[b.Name] = b
	}
	cur := make(map[string]Benchmark, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		cur[b.Name] = b
	}

	fmt.Fprintf(w, "### Benchmark delta: %s → %s\n\n", oldPath, newPath)
	fmt.Fprintln(w, "| benchmark | old ns/op | new ns/op | Δ ns/op | old allocs/op | new allocs/op | Δ allocs |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old[name], cur[name]
		nsDelta := "n/a"
		if o.NsPerOp > 0 {
			nsDelta = fmt.Sprintf("%+.1f%%", (n.NsPerOp-o.NsPerOp)/o.NsPerOp*100)
		}
		oldAllocs, newAllocs, allocDelta := "-", "-", "-"
		if o.AllocsPerOp != nil {
			oldAllocs = fmt.Sprintf("%.0f", *o.AllocsPerOp)
		}
		if n.AllocsPerOp != nil {
			newAllocs = fmt.Sprintf("%.0f", *n.AllocsPerOp)
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			allocDelta = fmt.Sprintf("%+.0f", *n.AllocsPerOp-*o.AllocsPerOp)
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %s | %s | %s | %s |\n",
			name, o.NsPerOp, n.NsPerOp, nsDelta, oldAllocs, newAllocs, allocDelta)
	}
	var added, removed []string
	for name := range cur {
		if _, ok := old[name]; !ok {
			added = append(added, name)
		}
	}
	for name := range old {
		if _, ok := cur[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	if len(added) > 0 {
		fmt.Fprintf(w, "\nNew lanes: %s\n", strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Fprintf(w, "\nRemoved lanes: %s\n", strings.Join(removed, ", "))
	}
	return nil
}

// checkGate re-reads the just-written output document and reports every
// benchmark whose ns/op regressed beyond threshold percent or whose
// allocs/op grew at all. The output file is written before the gate runs
// so CI can always upload the artifact, pass or fail.
func checkGate(outPath string, threshold float64) []string {
	data, err := os.ReadFile(outPath)
	if err != nil {
		return []string{err.Error()}
	}
	var doc Baseline
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{err.Error()}
	}
	var regressions []string
	for _, d := range doc.Deltas {
		if d.NsPerOpPct > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s ns/op regressed %.1f%% (threshold %.0f%%)", d.Name, d.NsPerOpPct, threshold))
		}
		if d.AllocsPerOpDiff != nil && *d.AllocsPerOpDiff > 0 {
			regressions = append(regressions,
				fmt.Sprintf("%s allocs/op grew by %.0f", d.Name, *d.AllocsPerOpDiff))
		}
	}
	return regressions
}

func run(in, out, baseline string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()

	base := Baseline{Source: in}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	base.Speedups = deriveSpeedups(base.Benchmarks)
	base.ObsPairs = deriveObsPairs(base.Benchmarks)
	if baseline != "" {
		deltas, err := deriveDeltas(baseline, base.Benchmarks)
		if err != nil {
			return err
		}
		base.Deltas = deltas
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

// parseLine parses one result line:
//
//	BenchmarkName-8   100   11915 ns/op   56.40 crossover-s   19928 B/op   9 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = ptr(v)
		case "allocs/op":
			b.AllocsPerOp = ptr(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func ptr(v float64) *float64 { return &v }

// splitProcs strips the -N GOMAXPROCS suffix go test appends when
// GOMAXPROCS > 1. Names can legitimately contain dashes, so only a
// trailing all-digit segment counts.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// deriveObsPairs matches BenchmarkObsDisabled/<X> with Benchmark<X> from
// the same run.
func deriveObsPairs(bs []Benchmark) []ObsPair {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []ObsPair
	for _, b := range bs {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkObsDisabled/")
		if !ok {
			continue
		}
		ref, ok := byName["Benchmark"+rest]
		if !ok {
			continue
		}
		pair := ObsPair{
			Benchmark:        "Benchmark" + rest,
			DisabledNsPerOp:  b.NsPerOp,
			ReferenceNsPerOp: ref.NsPerOp,
		}
		if b.AllocsPerOp != nil && ref.AllocsPerOp != nil {
			pair.AddedAllocsPerOp = *b.AllocsPerOp - *ref.AllocsPerOp
		}
		out = append(out, pair)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Benchmark < out[j].Benchmark })
	return out
}

// deriveDeltas diffs the current run against a previously written baseline
// file, for the benchmarks present in both.
func deriveDeltas(path string, bs []Benchmark) ([]Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev Baseline
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	old := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[b.Name] = b
	}
	var out []Delta
	for _, b := range bs {
		o, ok := old[b.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		d := Delta{Name: b.Name, NsPerOpPct: (b.NsPerOp - o.NsPerOp) / o.NsPerOp * 100}
		if b.AllocsPerOp != nil && o.AllocsPerOp != nil {
			d.AllocsPerOpDiff = ptr(*b.AllocsPerOp - *o.AllocsPerOp)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// deriveSpeedups pairs <name>/serial with <name>/parallel results.
func deriveSpeedups(bs []Benchmark) []Speedup {
	serial := map[string]float64{}
	parallel := map[string]float64{}
	for _, b := range bs {
		if root, ok := strings.CutSuffix(b.Name, "/serial"); ok {
			serial[root] = b.NsPerOp
		}
		if root, ok := strings.CutSuffix(b.Name, "/parallel"); ok {
			parallel[root] = b.NsPerOp
		}
	}
	var out []Speedup
	for root, s := range serial {
		p, ok := parallel[root]
		if !ok || p <= 0 {
			continue
		}
		out = append(out, Speedup{Benchmark: root, SerialNsPerOp: s, ParallelNsPerOp: p, Speedup: s / p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Benchmark < out[j].Benchmark })
	return out
}
